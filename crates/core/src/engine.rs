//! Analytic wave-superposition engine.
//!
//! Evaluates a gate in O(sources) by summing complex wave amplitudes per
//! channel at the detector:
//!
//! ```text
//! z_c = Σ_j  A_{c,j} · e^{−Δx_{c,j}/L_c} · e^{i (k_c Δx_{c,j} + φ_j)}
//! ```
//!
//! with `Δx` the source→detector distance, `L_c` the attenuation length
//! and `φ_j ∈ {0, π}` the encoded input bit. Because the layout places
//! same-channel sources an integer number of wavelengths apart, the
//! geometric phases collapse and the interference is governed by the
//! encoded bits exactly as in the paper's §II. The engine keeps the full
//! `k_c Δx` term, so layout errors surface as wrong logic — the same
//! failure mode a real device would show.
//!
//! Two entry levels exist:
//!
//! * the free functions ([`superpose_channel`] etc.) recompute geometry
//!   on every call — used by diagnostics and tests;
//! * `EnginePrep` (crate-private) folds the per-source geometry, damping
//!   decay and excitation schedule into one complex factor per
//!   `(channel, input)` **once**, after which an evaluation is `m` fused
//!   multiply-adds per channel. [`crate::gate::ParallelGate`] compiles
//!   its prep at build time and every backend in [`crate::backend`]
//!   evaluates through it.

use crate::channel::ChannelPlan;
use crate::encoding::{phase_of, ReadoutMode};
use crate::error::GateError;
use crate::inline::InlineLayout;
use crate::scalability::EnergySchedule;
use crate::truth::LogicFunction;
use crate::word::Word;
use magnon_math::Complex64;

/// Per-channel readout produced by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelReadout {
    /// Channel index.
    pub channel: usize,
    /// Carrier frequency in Hz.
    pub frequency: f64,
    /// Interference amplitude at the detector (arbitrary units; 1.0 =
    /// one un-attenuated source).
    pub amplitude: f64,
    /// Interference phase at the detector in radians.
    pub phase: f64,
    /// The decoded logic value.
    pub logic: bool,
}

fn detector_index(layout: &InlineLayout, channel: usize) -> Result<usize, GateError> {
    layout
        .detectors()
        .iter()
        .position(|d| d.channel == channel)
        .ok_or(GateError::MalformedLayout {
            channel,
            reason: "layout carries no detector for this channel",
        })
}

/// Evaluates one channel: complex superposition of all of the channel's
/// sources observed at its detector.
///
/// `bits[j]` is input `j`'s logic value on this channel; `amplitudes[j]`
/// the excitation amplitude of source `j` (1.0 nominal).
///
/// # Errors
///
/// * [`GateError::MalformedLayout`] when the layout lacks the
///   channel's detector.
/// * [`GateError::InputCountMismatch`] when `bits`/`amplitudes` are
///   shorter than the layout's operand count.
pub fn superpose_channel(
    plan: &ChannelPlan,
    layout: &InlineLayout,
    channel: usize,
    bits: &[bool],
    amplitudes: &[f64],
) -> Result<Complex64, GateError> {
    let ch = plan.channel(channel)?;
    let detector = &layout.detectors()[detector_index(layout, channel)?];
    let mut z = Complex64::ZERO;
    for src in layout.sources().iter().filter(|s| s.channel == channel) {
        // A short operand slice is the caller's mistake, not the
        // layout's — report it as such.
        if src.input >= bits.len() || src.input >= amplitudes.len() {
            return Err(GateError::InputCountMismatch {
                expected: src.input + 1,
                actual: bits.len().min(amplitudes.len()),
            });
        }
        let dx = detector.position - src.position;
        let decay = (-dx / ch.attenuation_length).exp();
        let phase = ch.wavenumber * dx + phase_of(bits[src.input]);
        z += Complex64::from_polar(amplitudes[src.input] * decay, phase);
    }
    Ok(z)
}

/// Decodes the interference phasor of one channel into a logic value.
///
/// * Majority: the phase decides — `Re(z) < 0` means the π-phase camp
///   won. Inverted readout is realised geometrically (the detector
///   offset already flips the phase), so no software inversion happens
///   here.
/// * XOR: the amplitude decides — below half of the full constructive
///   amplitude `reference` means cancellation, i.e. logic 1; inverted
///   readout complements that decision (amplitude carries no geometric
///   phase flip).
pub(crate) fn decode_channel(
    function: LogicFunction,
    z: Complex64,
    reference: f64,
    inverted_amplitude_readout: bool,
) -> bool {
    match function {
        LogicFunction::Majority => z.re < 0.0,
        LogicFunction::Xor => {
            let bit = z.abs() < 0.5 * reference;
            if inverted_amplitude_readout {
                !bit
            } else {
                bit
            }
        }
    }
}

/// The full constructive-interference amplitude of a channel — all
/// sources in phase — used as the XOR decision reference.
///
/// # Errors
///
/// Same conditions as [`superpose_channel`].
pub fn constructive_reference(
    plan: &ChannelPlan,
    layout: &InlineLayout,
    channel: usize,
    amplitudes: &[f64],
) -> Result<f64, GateError> {
    let ch = plan.channel(channel)?;
    let detector = &layout.detectors()[detector_index(layout, channel)?];
    let mut reference = 0.0;
    for src in layout.sources().iter().filter(|s| s.channel == channel) {
        if src.input >= amplitudes.len() {
            return Err(GateError::InputCountMismatch {
                expected: src.input + 1,
                actual: amplitudes.len(),
            });
        }
        let dx = detector.position - src.position;
        reference += amplitudes[src.input] * (-dx / ch.attenuation_length).exp();
    }
    Ok(reference)
}

/// A gate compiled for evaluation: per-`(channel, input)` complex
/// factors with geometry, damping and drive amplitude folded in, plus
/// the per-channel XOR references and readout conventions.
///
/// An input bit only flips the sign of its factor (`φ ∈ {0, π}`), so an
/// evaluation is `m` multiply-adds per channel — no trigonometry on the
/// hot path.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EnginePrep {
    function: LogicFunction,
    /// `factors[channel][input]` — the bit-0 phasor of that source at
    /// the detector.
    factors: Vec<Vec<Complex64>>,
    /// Full constructive amplitude per channel (XOR reference).
    references: Vec<f64>,
    /// Whether the channel uses inverted amplitude readout.
    inverted: Vec<bool>,
    /// Channel carrier frequencies in Hz.
    frequencies: Vec<f64>,
}

impl EnginePrep {
    /// Compiles the channel plan, layout, schedule and readout modes.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::MalformedLayout`] for layouts missing a
    /// detector or referencing out-of-range inputs — the error path
    /// that replaced the engine's former panic.
    pub(crate) fn compile(
        plan: &ChannelPlan,
        layout: &InlineLayout,
        schedule: &EnergySchedule,
        readout: &[ReadoutMode],
        function: LogicFunction,
    ) -> Result<Self, GateError> {
        let n = plan.len();
        let m = layout.input_count();
        if readout.len() != n {
            return Err(GateError::InputCountMismatch {
                expected: n,
                actual: readout.len(),
            });
        }
        if schedule.channel_count() != n {
            return Err(GateError::MalformedLayout {
                channel: schedule.channel_count(),
                reason: "energy schedule does not cover every channel",
            });
        }
        let mut factors = Vec::with_capacity(n);
        let mut references = Vec::with_capacity(n);
        for (c, ch) in plan.channels().iter().enumerate() {
            let amplitudes = schedule.amplitudes_for_channel(c);
            let detector = &layout.detectors()[detector_index(layout, c)?];
            let mut per_input = vec![Complex64::ZERO; m];
            let mut reference = 0.0;
            for src in layout.sources().iter().filter(|s| s.channel == c) {
                if src.input >= m {
                    return Err(GateError::MalformedLayout {
                        channel: c,
                        reason: "source references an input beyond the gate's operand count",
                    });
                }
                let dx = detector.position - src.position;
                let arrival = amplitudes[src.input] * (-dx / ch.attenuation_length).exp();
                per_input[src.input] += Complex64::from_polar(arrival, ch.wavenumber * dx);
                reference += arrival;
            }
            factors.push(per_input);
            references.push(reference);
        }
        Ok(EnginePrep {
            function,
            factors,
            references,
            inverted: readout
                .iter()
                .map(|r| *r == ReadoutMode::Inverted)
                .collect(),
            frequencies: plan.channels().iter().map(|c| c.frequency).collect(),
        })
    }

    /// Word width `n`.
    pub(crate) fn channel_count(&self) -> usize {
        self.factors.len()
    }

    /// FNV-1a hash over everything a readout computes from: the
    /// function, the compiled per-channel phasor factors, constructive
    /// references, inversion flags and carrier frequencies. Two preps
    /// with equal fingerprints produce bitwise-identical outputs for
    /// identical operands — whatever builder parameters (waveguide,
    /// dispersion model, layout, equalization, readout modes) they were
    /// compiled from.
    pub(crate) fn fingerprint(&self) -> u64 {
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = eat(h, &[self.function as u8]);
        h = eat(h, &(self.input_count() as u32).to_le_bytes());
        h = eat(h, &(self.factors.len() as u32).to_le_bytes());
        for per_input in &self.factors {
            for factor in per_input {
                h = eat(h, &factor.re.to_bits().to_le_bytes());
                h = eat(h, &factor.im.to_bits().to_le_bytes());
            }
        }
        for reference in &self.references {
            h = eat(h, &reference.to_bits().to_le_bytes());
        }
        for &inv in &self.inverted {
            h = eat(h, &[inv as u8]);
        }
        for f in &self.frequencies {
            h = eat(h, &f.to_bits().to_le_bytes());
        }
        h
    }

    /// Operand count `m`.
    pub(crate) fn input_count(&self) -> usize {
        self.factors.first().map_or(0, Vec::len)
    }

    /// Evaluates one channel for the input combination `combo`
    /// (bit `j` of `combo` = input `j`'s logic value).
    ///
    /// Hot path: callers guarantee `channel < channel_count()` and
    /// `combo < 2^m` (gate construction validates both), so this stays
    /// a debug assertion rather than a `Result`.
    pub(crate) fn channel_readout(&self, channel: usize, combo: usize) -> ChannelReadout {
        debug_assert!(
            channel < self.factors.len(),
            "channel {channel} outside the compiled prep"
        );
        debug_assert!(
            combo < 1usize << self.input_count(),
            "combo {combo} outside the gate's 2^m input combinations"
        );
        let factors = &self.factors[channel];
        let mut z = Complex64::ZERO;
        for (j, factor) in factors.iter().enumerate() {
            // Logic 1 drives at phase π: the factor's sign flips.
            if (combo >> j) & 1 == 1 {
                z -= *factor;
            } else {
                z += *factor;
            }
        }
        let logic = decode_channel(
            self.function,
            z,
            self.references[channel],
            self.inverted[channel],
        );
        ChannelReadout {
            channel,
            frequency: self.frequencies[channel],
            amplitude: z.abs(),
            phase: z.arg(),
            logic,
        }
    }

    /// The input combination channel `c` carries for `inputs`.
    ///
    /// # Errors
    ///
    /// Propagates bit-index errors for out-of-range channels.
    pub(crate) fn channel_combo(inputs: &[Word], channel: usize) -> Result<usize, GateError> {
        let mut combo = 0usize;
        for (j, word) in inputs.iter().enumerate() {
            combo |= (word.bit(channel)? as usize) << j;
        }
        Ok(combo)
    }

    /// Evaluates every channel for one operand set, returning only the
    /// decoded word — the logic-only hot path skips the readout
    /// allocation entirely. Operand shape must already be validated
    /// against the gate.
    ///
    /// # Errors
    ///
    /// Propagates word construction errors (cannot occur for validated
    /// operands).
    pub(crate) fn evaluate_word(&self, inputs: &[Word]) -> Result<Word, GateError> {
        let n = self.channel_count();
        let mut bits = 0u64;
        for c in 0..n {
            let readout = self.channel_readout(c, Self::channel_combo(inputs, c)?);
            bits |= (readout.logic as u64) << c;
        }
        Word::from_bits(bits, n)
    }

    /// Evaluates every channel for one operand set. Operand shape must
    /// already be validated against the gate.
    ///
    /// # Errors
    ///
    /// Propagates word construction errors (cannot occur for validated
    /// operands).
    pub(crate) fn evaluate_set(
        &self,
        inputs: &[Word],
    ) -> Result<(Word, Vec<ChannelReadout>), GateError> {
        let n = self.channel_count();
        let mut word = Word::zeros(n)?;
        let mut readouts = Vec::with_capacity(n);
        for c in 0..n {
            let readout = self.channel_readout(c, Self::channel_combo(inputs, c)?);
            word = word.with_bit(c, readout.logic)?;
            readouts.push(readout);
        }
        Ok((word, readouts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::DispersionModel;
    use crate::encoding::ReadoutMode;
    use crate::inline::LayoutSpec;
    use magnon_math::constants::GHZ;
    use magnon_physics::waveguide::Waveguide;

    fn setup(n: usize, m: usize, readout: ReadoutMode) -> (ChannelPlan, InlineLayout) {
        let guide = Waveguide::paper_default().unwrap();
        let plan =
            ChannelPlan::uniform(&guide, DispersionModel::Exchange, n, 10.0 * GHZ, 10.0 * GHZ)
                .unwrap();
        let layout =
            InlineLayout::solve(&plan, m, LayoutSpec::default(), &vec![readout; n]).unwrap();
        (plan, layout)
    }

    #[test]
    fn all_zeros_interferes_constructively_near_zero_phase() {
        let (plan, layout) = setup(3, 3, ReadoutMode::Direct);
        for c in 0..3 {
            let z = superpose_channel(&plan, &layout, c, &[false; 3], &[1.0; 3]).unwrap();
            assert!(z.re > 0.0, "channel {c}: phase should be ~0");
            // Almost all the amplitude survives (sub-micron propagation,
            // micron-scale attenuation).
            assert!(z.abs() > 2.0, "channel {c}: |z| = {}", z.abs());
            assert!(z.arg().abs() < 1e-3, "channel {c}: arg = {}", z.arg());
        }
    }

    #[test]
    fn all_ones_interferes_constructively_at_pi() {
        let (plan, layout) = setup(3, 3, ReadoutMode::Direct);
        for c in 0..3 {
            let z = superpose_channel(&plan, &layout, c, &[true; 3], &[1.0; 3]).unwrap();
            assert!(z.re < 0.0);
            assert!(z.abs() > 2.0);
        }
    }

    #[test]
    fn majority_phase_wins_in_two_vs_one() {
        let (plan, layout) = setup(2, 3, ReadoutMode::Direct);
        for c in 0..2 {
            // Two zeros, one one: phase ≈ 0, amplitude ≈ 1 source.
            let z = superpose_channel(&plan, &layout, c, &[false, true, false], &[1.0; 3]).unwrap();
            assert!(z.re > 0.0);
            assert!(z.abs() < 1.5 && z.abs() > 0.5);
            // Two ones, one zero: phase ≈ π.
            let z = superpose_channel(&plan, &layout, c, &[true, false, true], &[1.0; 3]).unwrap();
            assert!(z.re < 0.0);
        }
    }

    #[test]
    fn inverted_detector_flips_phase_geometrically() {
        let (plan, layout) = setup(2, 3, ReadoutMode::Inverted);
        for c in 0..2 {
            let z = superpose_channel(&plan, &layout, c, &[false; 3], &[1.0; 3]).unwrap();
            // All-zeros at a half-wavelength-offset detector: phase π.
            assert!(z.re < 0.0, "inverted channel {c} should read π for zeros");
        }
    }

    #[test]
    fn xor_cancellation() {
        let (plan, layout) = setup(2, 2, ReadoutMode::Direct);
        for c in 0..2 {
            let equal = superpose_channel(&plan, &layout, c, &[false, false], &[1.0; 2]).unwrap();
            let differ = superpose_channel(&plan, &layout, c, &[false, true], &[1.0; 2]).unwrap();
            let reference = constructive_reference(&plan, &layout, c, &[1.0; 2]).unwrap();
            assert!(equal.abs() > 0.9 * reference);
            assert!(
                differ.abs() < 0.2 * reference,
                "cancellation failed: {}",
                differ.abs()
            );
            assert!(!decode_channel(LogicFunction::Xor, equal, reference, false));
            assert!(decode_channel(LogicFunction::Xor, differ, reference, false));
        }
    }

    #[test]
    fn xor_inverted_readout_complements() {
        let z_small = Complex64::new(0.05, 0.0);
        let z_big = Complex64::new(1.9, 0.0);
        assert!(decode_channel(LogicFunction::Xor, z_small, 2.0, false));
        assert!(!decode_channel(LogicFunction::Xor, z_small, 2.0, true));
        assert!(!decode_channel(LogicFunction::Xor, z_big, 2.0, false));
        assert!(decode_channel(LogicFunction::Xor, z_big, 2.0, true));
    }

    #[test]
    fn majority_decode_sign_convention() {
        assert!(!decode_channel(
            LogicFunction::Majority,
            Complex64::new(0.8, 0.1),
            0.0,
            false
        ));
        assert!(decode_channel(
            LogicFunction::Majority,
            Complex64::new(-0.3, 0.2),
            0.0,
            false
        ));
    }

    #[test]
    fn unequal_amplitudes_shift_the_balance() {
        // The scalability hazard: if the far source is much weaker, a
        // 2-vs-1 majority can flip. With equalised amplitudes it cannot.
        let (plan, layout) = setup(2, 3, ReadoutMode::Direct);
        let z_eq = superpose_channel(&plan, &layout, 0, &[true, false, false], &[1.0; 3]).unwrap();
        assert!(z_eq.re > 0.0, "balanced amplitudes: majority of zeros wins");
        // Give the two logic-0 sources only a tenth of the amplitude.
        let z_skew =
            superpose_channel(&plan, &layout, 0, &[true, false, false], &[1.0, 0.05, 0.05])
                .unwrap();
        assert!(z_skew.re < 0.0, "skewed amplitudes flip the vote");
    }

    #[test]
    fn decay_reduces_far_source_contribution() {
        let (plan, layout) = setup(2, 3, ReadoutMode::Direct);
        // Drive only input 0 (farthest) vs only input 2 (nearest).
        let far = superpose_channel(&plan, &layout, 0, &[false; 3], &[1.0, 0.0, 0.0]).unwrap();
        let near = superpose_channel(&plan, &layout, 0, &[false; 3], &[0.0, 0.0, 1.0]).unwrap();
        assert!(far.abs() < near.abs(), "farther source must arrive weaker");
        assert!(far.abs() > 0.5 * near.abs(), "but not catastrophically so");
    }

    #[test]
    fn short_operand_slice_is_an_error_not_a_panic() {
        let (plan, layout) = setup(2, 3, ReadoutMode::Direct);
        assert!(matches!(
            superpose_channel(&plan, &layout, 0, &[false; 2], &[1.0; 2]),
            Err(GateError::InputCountMismatch { actual: 2, .. })
        ));
        assert!(matches!(
            constructive_reference(&plan, &layout, 0, &[1.0; 1]),
            Err(GateError::InputCountMismatch { actual: 1, .. })
        ));
    }

    #[test]
    fn prep_matches_free_function_evaluation() {
        let (plan, layout) = setup(4, 3, ReadoutMode::Direct);
        let schedule = EnergySchedule::equalizing(&plan, &layout).unwrap();
        let readout = vec![ReadoutMode::Direct; 4];
        let prep =
            EnginePrep::compile(&plan, &layout, &schedule, &readout, LogicFunction::Majority)
                .unwrap();
        assert_eq!(prep.channel_count(), 4);
        assert_eq!(prep.input_count(), 3);
        for c in 0..4 {
            for combo in 0..8usize {
                let bits: Vec<bool> = (0..3).map(|j| (combo >> j) & 1 == 1).collect();
                let z =
                    superpose_channel(&plan, &layout, c, &bits, schedule.amplitudes_for_channel(c))
                        .unwrap();
                let r = prep.channel_readout(c, combo);
                assert!(
                    (z.abs() - r.amplitude).abs() < 1e-9,
                    "channel {c} combo {combo}"
                );
                assert_eq!(
                    decode_channel(LogicFunction::Majority, z, 0.0, false),
                    r.logic,
                    "channel {c} combo {combo}"
                );
            }
        }
    }

    #[test]
    fn prep_evaluates_whole_words() {
        let (plan, layout) = setup(8, 3, ReadoutMode::Direct);
        let schedule = EnergySchedule::equalizing(&plan, &layout).unwrap();
        let prep = EnginePrep::compile(
            &plan,
            &layout,
            &schedule,
            &[ReadoutMode::Direct; 8],
            LogicFunction::Majority,
        )
        .unwrap();
        let a = Word::from_u8(0xAA);
        let b = Word::from_u8(0xCC);
        let c = Word::from_u8(0xF0);
        let (word, readouts) = prep.evaluate_set(&[a, b, c]).unwrap();
        assert_eq!(word.to_u8(), (0xAA & 0xCC) | (0xAA & 0xF0) | (0xCC & 0xF0));
        assert_eq!(readouts.len(), 8);
    }
}
