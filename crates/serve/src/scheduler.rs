//! The sharded, waveguide-aware scheduler.
//!
//! # Architecture
//!
//! ```text
//!  clients ── submit(GateId, OperandSet) ──► Ticket
//!      │
//!      ▼  route by the gate's WaveguideId (gates sharing a
//!      │  waveguide always land on the same shard)
//!  ┌───────────────┐   ┌───────────────┐
//!  │ shard 0 queue │   │ shard 1 queue │   … bounded MPSC
//!  └──────┬────────┘   └──────┬────────┘
//!         ▼                   ▼
//!   worker thread        worker thread     each owns its OWN
//!   drain → group        drain → group     backend instance per
//!   by gate →            by gate →         gate (split_session)
//!   evaluate_batch       evaluate_batch
//! ```
//!
//! A worker drains its queue in cycles: it blocks on the first request,
//! then keeps collecting until the configurable linger window closes or
//! the batch cap is reached, groups what it got by target gate, and
//! issues one [`GateSession::evaluate_batch`] per gate touched. Because
//! routing is by [`WaveguideId`], a drain cycle naturally coalesces
//! requests across *different* gates sharing a waveguide — the
//! cross-gate data parallelism of the companion paper (arXiv:2008.12220)
//! — while requests for the same gate ride one batch, the in-waveguide
//! parallelism of the source paper.
//!
//! Completions carry the scheduler-assigned request tag, so they are
//! safe to deliver out of order; each [`Ticket`] simply receives its
//! own.
//!
//! # LUT persistence
//!
//! With [`ServeConfig::lut_dir`] set, [`SchedulerBuilder::build`] loads
//! each gate's persisted truth-table LUT (if present and valid) into
//! the template session before splitting per-shard instances, and
//! [`Scheduler::shutdown`] merges every shard's LUT and writes it back.
//! A warm restart therefore serves from the first request without
//! recomputing any channel readout.

use crate::error::ServeError;
use crate::request::{EvalJob, GateId, SchedulerStats, SharedStats, Ticket};
use magnon_circuits::netlist::packed_frequency_step;
use magnon_core::backend::{BackendChoice, GateSession, OperandSet};
use magnon_core::gate::{GateOutput, ParallelGate, ParallelGateBuilder, WaveguideId};
use magnon_core::lut_store::{load_lut, save_lut, LutSnapshot};
use magnon_core::truth::LogicFunction;
use magnon_core::GateError;
use magnon_physics::waveguide::Waveguide;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shard count (clamped to ≥ 1). Gates are routed to shard
    /// `waveguide_id % workers`.
    pub workers: usize,
    /// Largest number of requests one drain cycle serves.
    pub max_batch: usize,
    /// How long a worker keeps collecting after the first request of a
    /// drain cycle, trading latency for batch size.
    pub linger: Duration,
    /// Bound of each shard's request queue; blocking submission applies
    /// backpressure when full.
    pub queue_depth: usize,
    /// Directory for persisted LUT files (`<gate name>.mglut`). `None`
    /// disables persistence.
    pub lut_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 256,
            linger: Duration::from_micros(200),
            queue_depth: 1024,
            lut_dir: None,
        }
    }
}

/// One registered gate's bookkeeping.
struct GateEntry {
    name: String,
    /// Introspection clone (the serving sessions live on the shards).
    gate: ParallelGate,
    shard: usize,
    lut_loaded: usize,
}

/// Registers gates, then builds the runtime.
///
/// # Examples
///
/// ```
/// use magnon_core::backend::{BackendChoice, OperandSet};
/// use magnon_core::prelude::*;
/// use magnon_physics::waveguide::Waveguide;
/// use magnon_serve::{SchedulerBuilder, ServeConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
///     .channels(8)
///     .inputs(3)
///     .build()?;
/// let mut builder = SchedulerBuilder::new(ServeConfig::default());
/// let maj = builder.register("maj3", gate.clone(), BackendChoice::Cached)?;
/// let scheduler = builder.build()?;
///
/// let set = OperandSet::new(vec![
///     Word::from_u8(0x0F), Word::from_u8(0x33), Word::from_u8(0x55),
/// ]);
/// let ticket = scheduler.submit(maj, set.clone())?;
/// assert_eq!(ticket.wait()?.word(), gate.evaluate(set.words())?.word());
/// scheduler.shutdown()?;
/// # Ok(())
/// # }
/// ```
pub struct SchedulerBuilder {
    config: ServeConfig,
    registrations: Vec<(String, ParallelGate, BackendChoice)>,
}

impl SchedulerBuilder {
    /// Starts a builder with `config`.
    pub fn new(config: ServeConfig) -> Self {
        SchedulerBuilder {
            config,
            registrations: Vec::new(),
        }
    }

    /// Registers `gate` under `name` (also the LUT file stem when
    /// persistence is on), serving through `choice`'s backend on every
    /// shard the gate lands on.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Gate`] for a duplicate name — compared on
    /// the sanitized LUT file stem, so two names that would persist to
    /// the same `.mglut` file (e.g. `maj3/a` and `maj3_a`) cannot
    /// coexist and silently overwrite each other's tables.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        gate: ParallelGate,
        choice: BackendChoice,
    ) -> Result<GateId, ServeError> {
        let name = name.into();
        let stem = lut_stem(&name);
        if self
            .registrations
            .iter()
            .any(|(n, _, _)| lut_stem(n) == stem)
        {
            return Err(ServeError::Gate(GateError::Persistence {
                reason: format!("gate name `{name}` collides with an earlier registration (LUT file stem `{stem}`)"),
            }));
        }
        let id = GateId(self.registrations.len());
        self.registrations.push((name, gate, choice));
        Ok(id)
    }

    /// Registers the two gate shapes circuits lower to (3-input
    /// majority, 2-input XOR) at `width` channels on `waveguide`,
    /// mirroring what an inline
    /// [`magnon_circuits::netlist::GateBank`] would lazily build. Both
    /// gates carry `waveguide_id`, so their traffic shares a shard and
    /// coalesces.
    ///
    /// # Errors
    ///
    /// Gate construction failures and duplicate names.
    pub fn register_circuit_gates(
        &mut self,
        waveguide: Waveguide,
        waveguide_id: WaveguideId,
        width: usize,
        choice: BackendChoice,
    ) -> Result<(GateId, GateId), ServeError> {
        let maj3 = ParallelGateBuilder::new(waveguide)
            .channels(width)
            .inputs(3)
            .function(LogicFunction::Majority)
            .frequency_step(packed_frequency_step(width))
            .on_waveguide(waveguide_id)
            .build()
            .map_err(ServeError::Gate)?;
        let xor2 = ParallelGateBuilder::new(waveguide)
            .channels(width)
            .inputs(2)
            .function(LogicFunction::Xor)
            .frequency_step(packed_frequency_step(width))
            .on_waveguide(waveguide_id)
            .build()
            .map_err(ServeError::Gate)?;
        let maj_id = self.register(format!("maj3_w{width}_{waveguide_id}"), maj3, choice)?;
        let xor_id = self.register(format!("xor2_w{width}_{waveguide_id}"), xor2, choice)?;
        Ok((maj_id, xor_id))
    }

    /// Builds the runtime: loads persisted LUTs, splits per-shard
    /// sessions and spawns the workers.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Gate`] for backend construction failures.
    /// * [`ServeError::Gate`] wrapping [`GateError::Persistence`] when
    ///   a persisted LUT file exists but is corrupted or belongs to a
    ///   different gate design (delete the stale file to proceed).
    pub fn build(self) -> Result<Scheduler, ServeError> {
        let mut config = self.config;
        config.workers = config.workers.max(1);
        config.max_batch = config.max_batch.max(1);
        config.queue_depth = config.queue_depth.max(1);

        let mut entries = Vec::with_capacity(self.registrations.len());
        let mut templates: Vec<GateSession> = Vec::with_capacity(self.registrations.len());
        for (name, gate, choice) in self.registrations {
            let mut template = GateSession::new(gate.clone(), choice)?;
            let mut lut_loaded = 0;
            if let Some(dir) = &config.lut_dir {
                let path = lut_path(dir, &name);
                if path.exists() {
                    let snapshot = load_lut(&path)?;
                    lut_loaded = template.import_lut(&snapshot)?;
                }
            }
            let shard = (gate.waveguide_id().0 % config.workers as u64) as usize;
            entries.push(GateEntry {
                name,
                gate,
                shard,
                lut_loaded,
            });
            templates.push(template);
        }

        let stats = Arc::new(SharedStats::default());
        let mut senders = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        for shard in 0..config.workers {
            // Each worker owns a fresh split of every gate routed to it.
            let mut sessions: Vec<Option<GateSession>> = Vec::with_capacity(entries.len());
            for (entry, template) in entries.iter().zip(&templates) {
                if entry.shard == shard {
                    sessions.push(Some(template.split_session()?));
                } else {
                    sessions.push(None);
                }
            }
            let (tx, rx) = mpsc::sync_channel(config.queue_depth);
            let worker = Worker {
                rx,
                sessions,
                linger: config.linger,
                max_batch: config.max_batch,
                stats: Arc::clone(&stats),
            };
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("magnon-serve-{shard}"))
                    .spawn(move || worker.run())
                    .map_err(|e| {
                        ServeError::Gate(GateError::Runtime {
                            reason: format!("failed to spawn worker thread: {e}"),
                        })
                    })?,
            );
        }
        Ok(Scheduler {
            entries,
            senders,
            handles,
            stats,
            next_tag: AtomicU64::new(0),
            config,
        })
    }
}

/// Gate name → tame file stem; `register` enforces uniqueness on this,
/// not on the raw name, so no two gates persist to the same file.
fn lut_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn lut_path(dir: &std::path::Path, name: &str) -> PathBuf {
    dir.join(format!("{}.mglut", lut_stem(name)))
}

/// One worker shard: a bounded queue and its own backend instances.
struct Worker {
    rx: Receiver<EvalJob>,
    /// `sessions[gate index]` — `Some` only for gates routed here.
    sessions: Vec<Option<GateSession>>,
    linger: Duration,
    max_batch: usize,
    stats: Arc<SharedStats>,
}

/// What a worker hands back when its queue closes.
struct WorkerReport {
    /// `(gate index, LUT contents)` for every session that kept one.
    luts: Vec<(usize, LutSnapshot)>,
}

impl Worker {
    fn run(mut self) -> WorkerReport {
        let mut pending: Vec<EvalJob> = Vec::with_capacity(self.max_batch);
        loop {
            // Block for the cycle's first request; a closed queue is
            // the shutdown signal.
            match self.rx.recv() {
                Ok(job) => pending.push(job),
                Err(_) => break,
            }
            // Linger: keep collecting so concurrent submitters coalesce.
            let deadline = Instant::now() + self.linger;
            while pending.len() < self.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    // The window closed; sweep whatever is already
                    // queued without waiting further.
                    match self.rx.try_recv() {
                        Ok(job) => pending.push(job),
                        Err(_) => break,
                    }
                    continue;
                }
                match self.rx.recv_timeout(deadline - now) {
                    Ok(job) => pending.push(job),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            self.serve_drain(&mut pending);
        }
        // Drain stragglers that were queued before the last sender
        // dropped.
        while let Ok(job) = self.rx.try_recv() {
            pending.push(job);
            if pending.len() >= self.max_batch {
                self.serve_drain(&mut pending);
            }
        }
        if !pending.is_empty() {
            self.serve_drain(&mut pending);
        }
        WorkerReport {
            luts: self
                .sessions
                .iter()
                .enumerate()
                .filter_map(|(idx, s)| Some((idx, s.as_ref()?.lut_snapshot()?)))
                .collect(),
        }
    }

    /// Serves one drain cycle: group by gate, one batch per gate, tags
    /// routed back to their tickets.
    fn serve_drain(&mut self, pending: &mut Vec<EvalJob>) {
        let drained = pending.len() as u64;
        let mut groups: BTreeMap<usize, Vec<EvalJob>> = BTreeMap::new();
        for job in pending.drain(..) {
            groups.entry(job.gate).or_default().push(job);
        }
        let gates_touched = groups.len() as u64;
        for (gate_idx, group) in groups {
            let Some(session) = self.sessions.get_mut(gate_idx).and_then(Option::as_mut) else {
                for job in group {
                    self.stats.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send((
                        job.tag,
                        Err(GateError::Runtime {
                            reason: format!("gate {gate_idx} is not served by this shard"),
                        }),
                    ));
                }
                continue;
            };
            // Move the operand sets out of the jobs — the batch path
            // must not copy request payloads.
            let mut sets = Vec::with_capacity(group.len());
            let mut replies = Vec::with_capacity(group.len());
            for job in group {
                sets.push(job.set);
                replies.push((job.tag, job.reply));
            }
            match session.evaluate_batch(&sets) {
                Ok(outputs) => {
                    for ((tag, reply), output) in replies.into_iter().zip(outputs) {
                        self.stats.completed.fetch_add(1, Ordering::Relaxed);
                        let _ = reply.send((tag, Ok(output)));
                    }
                }
                Err(_) => {
                    // The batch failed as a whole; fall back to
                    // per-request evaluation so the error lands only on
                    // the requests that earned it.
                    for ((tag, reply), set) in replies.into_iter().zip(&sets) {
                        let result = session.evaluate(set.words());
                        match &result {
                            Ok(_) => self.stats.completed.fetch_add(1, Ordering::Relaxed),
                            Err(_) => self.stats.failed.fetch_add(1, Ordering::Relaxed),
                        };
                        let _ = reply.send((tag, result));
                    }
                }
            }
        }
        self.stats.record_drain(drained, gates_touched);
    }
}

/// What [`Scheduler::shutdown`] hands back.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Final counter snapshot.
    pub stats: SchedulerStats,
    /// LUT files written (empty without persistence).
    pub lut_files: Vec<PathBuf>,
    /// Total LUT entries persisted across those files.
    pub lut_entries_saved: usize,
}

/// The running sharded runtime. See the [module docs](self) for the
/// architecture.
pub struct Scheduler {
    entries: Vec<GateEntry>,
    senders: Vec<SyncSender<EvalJob>>,
    handles: Vec<JoinHandle<WorkerReport>>,
    stats: Arc<SharedStats>,
    next_tag: AtomicU64,
    config: ServeConfig,
}

impl Scheduler {
    /// The gate behind `id`, when registered.
    pub fn gate(&self, id: GateId) -> Option<&ParallelGate> {
        self.entries.get(id.0).map(|e| &e.gate)
    }

    /// The registration name of `id`.
    pub fn gate_name(&self, id: GateId) -> Option<&str> {
        self.entries.get(id.0).map(|e| e.name.as_str())
    }

    /// Number of registered gates.
    pub fn gate_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of worker shards.
    pub fn worker_count(&self) -> usize {
        self.senders.len()
    }

    /// The shard serving `id`'s waveguide.
    pub fn shard_of(&self, id: GateId) -> Option<usize> {
        self.entries.get(id.0).map(|e| e.shard)
    }

    /// LUT entries adopted from disk at build time (0 without
    /// persistence or on a cold start).
    pub fn lut_entries_loaded(&self) -> usize {
        self.entries.iter().map(|e| e.lut_loaded).sum()
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> SchedulerStats {
        self.stats.snapshot()
    }

    fn job_for(&self, id: GateId, set: OperandSet) -> Result<(usize, EvalJob, Ticket), ServeError> {
        let entry = self
            .entries
            .get(id.0)
            .ok_or(ServeError::UnknownGate { index: id.0 })?;
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = mpsc::channel();
        Ok((
            entry.shard,
            EvalJob {
                gate: id.0,
                tag,
                set,
                reply,
            },
            Ticket { tag, rx },
        ))
    }

    /// Submits one evaluation, blocking while the target shard's queue
    /// is full (backpressure).
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownGate`] for a foreign [`GateId`].
    /// * [`ServeError::Shutdown`] when the runtime is gone.
    pub fn submit(&self, id: GateId, set: OperandSet) -> Result<Ticket, ServeError> {
        let (shard, job, ticket) = self.job_for(id, set)?;
        self.senders[shard]
            .send(job)
            .map_err(|_| ServeError::Shutdown)?;
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(ticket)
    }

    /// Submits without blocking; a full queue is an error instead of
    /// backpressure.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] plus the conditions of
    /// [`Scheduler::submit`].
    pub fn try_submit(&self, id: GateId, set: OperandSet) -> Result<Ticket, ServeError> {
        let (shard, job, ticket) = self.job_for(id, set)?;
        match self.senders[shard].try_send(job) {
            Ok(()) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Err(TrySendError::Full(_)) => Err(ServeError::QueueFull { shard }),
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Shutdown),
        }
    }

    /// Submits a whole request list up front, then waits for every
    /// completion — the batchable-load entry point. Results come back
    /// in request order regardless of how the shards batched or
    /// reordered the work.
    ///
    /// # Errors
    ///
    /// The first failing request aborts with its error.
    pub fn evaluate_many(
        &self,
        requests: &[(GateId, OperandSet)],
    ) -> Result<Vec<GateOutput>, ServeError> {
        let mut tickets = Vec::with_capacity(requests.len());
        for (id, set) in requests {
            tickets.push(self.submit(*id, set.clone())?);
        }
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Stops accepting work, joins every worker and — with persistence
    /// configured — merges all shards' LUTs per gate and writes them to
    /// disk, so the next [`SchedulerBuilder::build`] starts warm.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Shutdown`] when a worker panicked.
    /// * [`ServeError::Gate`] wrapping [`GateError::Persistence`] when
    ///   a LUT file could not be written.
    pub fn shutdown(mut self) -> Result<ShutdownReport, ServeError> {
        self.senders.clear();
        let mut reports = Vec::new();
        for handle in std::mem::take(&mut self.handles) {
            reports.push(handle.join().map_err(|_| ServeError::Shutdown)?);
        }
        let stats = self.stats.snapshot();
        let mut lut_files = Vec::new();
        let mut lut_entries_saved = 0;
        if let Some(dir) = self.config.lut_dir.clone() {
            for (idx, entry) in self.entries.iter().enumerate() {
                let mut merged: Option<LutSnapshot> = None;
                for report in &reports {
                    for (gate_idx, snapshot) in &report.luts {
                        if *gate_idx != idx {
                            continue;
                        }
                        match &mut merged {
                            None => merged = Some(snapshot.clone()),
                            Some(m) => {
                                m.merge(snapshot)?;
                            }
                        }
                    }
                }
                if let Some(snapshot) = merged {
                    if snapshot.entry_count() > 0 {
                        let path = lut_path(&dir, &entry.name);
                        save_lut(&path, &snapshot)?;
                        lut_entries_saved += snapshot.entry_count();
                        lut_files.push(path);
                    }
                }
            }
        }
        Ok(ShutdownReport {
            stats,
            lut_files,
            lut_entries_saved,
        })
    }
}

impl Drop for Scheduler {
    /// Dropping without [`Scheduler::shutdown`] still joins the
    /// workers, but skips LUT persistence.
    fn drop(&mut self) {
        self.senders.clear();
        for handle in std::mem::take(&mut self.handles) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("gates", &self.entries.len())
            .field("workers", &self.senders.len())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}
