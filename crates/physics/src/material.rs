//! Ferromagnetic material parameter sets.

use crate::error::PhysicsError;
use magnon_math::constants::{GAMMA_E, MU_0};
use serde::{Deserialize, Serialize};

/// Parameters of a ferromagnetic material with perpendicular uniaxial
/// anisotropy.
///
/// The preset [`Material::fe_co_b`] carries the exact constants used in
/// the reproduced paper (§IV.B): Fe₆₀Co₂₀B₂₀ with
/// `Ms = 1.1e6 A/m`, `A_ex = 18.5 pJ/m`, `α = 0.004`,
/// `k_ani = 8.3177e5 J/m³`.
///
/// # Examples
///
/// ```
/// use magnon_physics::material::Material;
///
/// let m = Material::fe_co_b();
/// // PMA dominates shape anisotropy: H_ani > Ms.
/// assert!(m.anisotropy_field() > m.saturation_magnetization());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Material {
    saturation_magnetization: f64,
    exchange_stiffness: f64,
    gilbert_damping: f64,
    anisotropy_constant: f64,
}

impl Material {
    /// Creates a validated material.
    ///
    /// * `saturation_magnetization` — `Ms` in A/m, must be positive.
    /// * `exchange_stiffness` — `A_ex` in J/m, must be positive.
    /// * `gilbert_damping` — dimensionless `α`, in `(0, 1)`.
    /// * `anisotropy_constant` — first-order uniaxial `k_ani` in J/m³,
    ///   must be non-negative (easy axis out of plane).
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidMaterial`] naming the offending
    /// parameter.
    pub fn new(
        saturation_magnetization: f64,
        exchange_stiffness: f64,
        gilbert_damping: f64,
        anisotropy_constant: f64,
    ) -> Result<Self, PhysicsError> {
        if !(saturation_magnetization.is_finite() && saturation_magnetization > 0.0) {
            return Err(PhysicsError::InvalidMaterial {
                parameter: "saturation_magnetization",
                value: saturation_magnetization,
            });
        }
        if !(exchange_stiffness.is_finite() && exchange_stiffness > 0.0) {
            return Err(PhysicsError::InvalidMaterial {
                parameter: "exchange_stiffness",
                value: exchange_stiffness,
            });
        }
        if !(gilbert_damping.is_finite() && gilbert_damping > 0.0 && gilbert_damping < 1.0) {
            return Err(PhysicsError::InvalidMaterial {
                parameter: "gilbert_damping",
                value: gilbert_damping,
            });
        }
        if !(anisotropy_constant.is_finite() && anisotropy_constant >= 0.0) {
            return Err(PhysicsError::InvalidMaterial {
                parameter: "anisotropy_constant",
                value: anisotropy_constant,
            });
        }
        Ok(Material {
            saturation_magnetization,
            exchange_stiffness,
            gilbert_damping,
            anisotropy_constant,
        })
    }

    /// Fe₆₀Co₂₀B₂₀ with perpendicular magnetic anisotropy — the material
    /// of the reproduced paper (§IV.B, after Devolder et al., PRB 93,
    /// 024420).
    pub fn fe_co_b() -> Self {
        Material {
            saturation_magnetization: 1.1e6,
            exchange_stiffness: 18.5e-12,
            gilbert_damping: 0.004,
            anisotropy_constant: 8.3177e5,
        }
    }

    /// Yttrium iron garnet (YIG): the canonical ultra-low-damping
    /// magnonic material. In-plane film — `k_ani = 0`.
    pub fn yig() -> Self {
        Material {
            saturation_magnetization: 1.4e5,
            exchange_stiffness: 3.5e-12,
            gilbert_damping: 2.0e-4,
            anisotropy_constant: 0.0,
        }
    }

    /// Permalloy (Ni₈₀Fe₂₀), a common metallic reference material.
    pub fn permalloy() -> Self {
        Material {
            saturation_magnetization: 8.0e5,
            exchange_stiffness: 13.0e-12,
            gilbert_damping: 0.01,
            anisotropy_constant: 0.0,
        }
    }

    /// Saturation magnetization `Ms` in A/m.
    pub fn saturation_magnetization(&self) -> f64 {
        self.saturation_magnetization
    }

    /// Exchange stiffness `A_ex` in J/m.
    pub fn exchange_stiffness(&self) -> f64 {
        self.exchange_stiffness
    }

    /// Gilbert damping constant `α`.
    pub fn gilbert_damping(&self) -> f64 {
        self.gilbert_damping
    }

    /// First-order uniaxial anisotropy constant `k_ani` in J/m³.
    pub fn anisotropy_constant(&self) -> f64 {
        self.anisotropy_constant
    }

    /// Anisotropy field `H_ani = 2 k_ani / (μ₀ Ms)` in A/m.
    pub fn anisotropy_field(&self) -> f64 {
        2.0 * self.anisotropy_constant / (MU_0 * self.saturation_magnetization)
    }

    /// Squared exchange length `λ_ex² = 2 A_ex / (μ₀ Ms²)` in m².
    ///
    /// This is the coefficient of `k²` in the exchange contribution to
    /// the internal field: `H_ex = Ms λ_ex² k²`.
    pub fn exchange_length_sq(&self) -> f64 {
        2.0 * self.exchange_stiffness
            / (MU_0 * self.saturation_magnetization * self.saturation_magnetization)
    }

    /// Exchange length `λ_ex` in m.
    pub fn exchange_length(&self) -> f64 {
        self.exchange_length_sq().sqrt()
    }

    /// Circular frequency of the magnetization, `ω_M = γ μ₀ Ms` (rad/s).
    pub fn omega_m(&self) -> f64 {
        GAMMA_E * MU_0 * self.saturation_magnetization
    }

    /// Returns a copy with a different Gilbert damping; used by graded
    /// absorbing boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidMaterial`] if `alpha` is outside
    /// `(0, 1)`.
    pub fn with_damping(&self, alpha: f64) -> Result<Self, PhysicsError> {
        Material::new(
            self.saturation_magnetization,
            self.exchange_stiffness,
            alpha,
            self.anisotropy_constant,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_preserved() {
        let m = Material::fe_co_b();
        assert_eq!(m.saturation_magnetization(), 1.1e6);
        assert_eq!(m.exchange_stiffness(), 18.5e-12);
        assert_eq!(m.gilbert_damping(), 0.004);
        assert_eq!(m.anisotropy_constant(), 8.3177e5);
    }

    #[test]
    fn fe_co_b_anisotropy_field_exceeds_ms() {
        // The paper: H_anisotropy > Ms implies no external field needed.
        let m = Material::fe_co_b();
        assert!(m.anisotropy_field() > m.saturation_magnetization());
        // Known value: ≈ 1.2035e6 A/m.
        assert!((m.anisotropy_field() - 1.2035e6).abs() / 1.2035e6 < 1e-3);
    }

    #[test]
    fn exchange_length_magnitude() {
        // FeCoB: λ_ex = sqrt(2·18.5e-12 / (μ0·(1.1e6)²)) ≈ 4.93 nm.
        let m = Material::fe_co_b();
        let lex = m.exchange_length();
        assert!((lex - 4.93e-9).abs() < 0.1e-9, "λ_ex = {lex}");
    }

    #[test]
    fn omega_m_magnitude() {
        let m = Material::fe_co_b();
        // γ μ0 Ms ≈ 1.7609e11 · 1.2566e-6 · 1.1e6 ≈ 2.434e11 rad/s.
        assert!((m.omega_m() - 2.434e11).abs() / 2.434e11 < 1e-3);
    }

    #[test]
    fn validation_rejects_nonphysical_values() {
        assert!(Material::new(-1.0, 1e-12, 0.01, 0.0).is_err());
        assert!(Material::new(1e6, 0.0, 0.01, 0.0).is_err());
        assert!(Material::new(1e6, 1e-12, 0.0, 0.0).is_err());
        assert!(Material::new(1e6, 1e-12, 1.0, 0.0).is_err());
        assert!(Material::new(1e6, 1e-12, 0.01, -5.0).is_err());
        assert!(Material::new(1e6, f64::NAN, 0.01, 0.0).is_err());
    }

    #[test]
    fn with_damping_preserves_other_fields() {
        let m = Material::fe_co_b().with_damping(0.5).unwrap();
        assert_eq!(m.gilbert_damping(), 0.5);
        assert_eq!(
            m.saturation_magnetization(),
            Material::fe_co_b().saturation_magnetization()
        );
        assert!(Material::fe_co_b().with_damping(2.0).is_err());
    }

    #[test]
    fn alternative_presets_are_valid() {
        for m in [Material::yig(), Material::permalloy()] {
            assert!(m.saturation_magnetization() > 0.0);
            assert!(m.exchange_length() > 1e-9);
        }
    }

    #[test]
    fn yig_damping_much_lower_than_metals() {
        assert!(Material::yig().gilbert_damping() < Material::permalloy().gilbert_damping());
    }
}
