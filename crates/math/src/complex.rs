//! Minimal double-precision complex arithmetic.
//!
//! The workspace deliberately avoids an external complex-number crate;
//! wave superposition and spectral analysis need only the operations
//! implemented here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Used throughout the workspace for spin-wave amplitudes
/// (`a·e^{iφ}`) and FFT spectra.
///
/// # Examples
///
/// ```
/// use magnon_math::Complex64;
///
/// let a = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// assert!((a.re).abs() < 1e-12);
/// assert!((a.im - 2.0).abs() < 1e-12);
/// assert!((a.abs() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };

    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    ///
    /// # Examples
    ///
    /// ```
    /// use magnon_math::Complex64;
    /// let z = Complex64::new(3.0, -4.0);
    /// assert_eq!(z.abs(), 5.0);
    /// ```
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a complex number from polar form `r·e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use magnon_math::Complex64;
    /// let z = Complex64::from_polar(1.0, std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}` — a unit phasor at angle `theta`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::from_polar(1.0, theta)
    }

    /// Magnitude |z|.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude |z|²; cheaper than [`Complex64::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Complex exponential `e^z`.
    ///
    /// # Examples
    ///
    /// ```
    /// use magnon_math::Complex64;
    /// let z = Complex64::new(0.0, std::f64::consts::PI).exp();
    /// assert!((z.re + 1.0).abs() < 1e-12);
    /// assert!(z.im.abs() < 1e-12);
    /// ```
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64::new(self.re * s, self.im * s)
    }

    /// Reciprocal `1/z`.
    ///
    /// Returns an unbounded value when `z` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Integer power by repeated squaring.
    ///
    /// # Examples
    ///
    /// ```
    /// use magnon_math::Complex64;
    /// let z = Complex64::I.powi(4);
    /// assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
    /// ```
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Complex64::ONE;
        }
        let mut base = if n < 0 { self.recip() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Complex64::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            n >>= 1;
        }
        acc
    }

    /// `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::new(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    // Multiplying by the reciprocal IS complex division.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-12;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn construction_and_accessors() {
        let z = Complex64::new(1.5, -2.5);
        assert_eq!(z.re, 1.5);
        assert_eq!(z.im, -2.5);
        assert_eq!(Complex64::from(3.0), Complex64::new(3.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * PI / 8.0;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert!(close(a + b - b, a));
        assert!(close(a * b / b, a));
        assert!(close(-(-a), a));
        assert!(close(a * Complex64::ONE, a));
        assert!(close(a + Complex64::ZERO, a));
    }

    #[test]
    fn multiplication_matches_polar_form() {
        let a = Complex64::from_polar(2.0, 0.3);
        let b = Complex64::from_polar(0.5, 1.1);
        let p = a * b;
        assert!((p.abs() - 1.0).abs() < EPS);
        assert!((p.arg() - 1.4).abs() < EPS);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, -Complex64::ONE));
    }

    #[test]
    fn conjugate_negates_phase() {
        let z = Complex64::from_polar(1.0, FRAC_PI_2);
        assert!((z.conj().arg() + FRAC_PI_2).abs() < EPS);
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = Complex64::new(0.0, PI).exp();
        assert!(close(z, -Complex64::ONE));
    }

    #[test]
    fn powi_positive_negative_zero() {
        let z = Complex64::new(0.5, 0.5);
        assert!(close(z.powi(0), Complex64::ONE));
        assert!(close(z.powi(3), z * z * z));
        assert!(close(z.powi(-2), (z * z).recip()));
    }

    #[test]
    fn scalar_ops_commute() {
        let z = Complex64::new(1.0, -1.0);
        assert!(close(2.0 * z, z * 2.0));
        assert!(close(z / 2.0, z * 0.5));
    }

    #[test]
    fn sum_of_phasors_cancels() {
        // Four phasors equally spaced around the circle sum to zero.
        let total: Complex64 = (0..4).map(|k| Complex64::cis(k as f64 * FRAC_PI_2)).sum();
        assert!(total.abs() < EPS);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::new(1.0, 1.0);
        z += Complex64::ONE;
        z -= Complex64::I;
        z *= Complex64::new(0.0, 1.0);
        assert!(close(z, Complex64::new(0.0, 2.0)));
    }

    #[test]
    fn finite_detection() {
        assert!(Complex64::new(1.0, 2.0).is_finite());
        assert!(!Complex64::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex64::new(0.0, f64::INFINITY).is_finite());
    }
}
