//! Physical constants and unit multipliers used across the workspace.
//!
//! All quantities are SI. Unit multipliers ([`NM`], [`GHZ`], …) make the
//! intent of literals explicit: `50.0 * NM` reads as "50 nanometres".
//!
//! # Examples
//!
//! ```
//! use magnon_math::constants::{GAMMA_E, MU_0, GHZ};
//!
//! // Ferromagnetic resonance of a 0.13 T effective field, in GHz:
//! let f = GAMMA_E * 0.13 / (2.0 * std::f64::consts::PI) / GHZ;
//! assert!((f - 3.64).abs() < 0.02);
//! ```

/// Electron gyromagnetic ratio γ (rad·s⁻¹·T⁻¹) for g ≈ 2.002.
pub const GAMMA_E: f64 = 1.760_859_630e11;

/// Vacuum permeability μ₀ (T·m·A⁻¹).
pub const MU_0: f64 = 1.256_637_062e-6;

/// Reduced Planck constant ħ (J·s).
pub const HBAR: f64 = 1.054_571_817e-34;

/// Boltzmann constant k_B (J·K⁻¹).
pub const K_B: f64 = 1.380_649e-23;

/// One nanometre in metres.
pub const NM: f64 = 1.0e-9;

/// One micrometre in metres.
pub const UM: f64 = 1.0e-6;

/// One picosecond in seconds.
pub const PS: f64 = 1.0e-12;

/// One nanosecond in seconds.
pub const NS: f64 = 1.0e-9;

/// One gigahertz in hertz.
pub const GHZ: f64 = 1.0e9;

/// One attojoule in joules.
pub const AJ: f64 = 1.0e-18;

/// Gyromagnetic ratio divided by 2π (Hz·T⁻¹); ≈ 28.02 GHz/T.
pub const GAMMA_E_OVER_2PI: f64 = GAMMA_E / (2.0 * std::f64::consts::PI);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_over_2pi_is_28_ghz_per_tesla() {
        assert!((GAMMA_E_OVER_2PI / GHZ - 28.024).abs() < 0.01);
    }

    #[test]
    fn mu0_matches_4pi_e7_to_si_redefinition_accuracy() {
        let classic = 4.0 * std::f64::consts::PI * 1.0e-7;
        assert!((MU_0 - classic).abs() / classic < 1.0e-9);
    }

    #[test]
    fn unit_multipliers_compose() {
        assert!((50.0 * NM - 5.0e-8).abs() < 1e-20);
        assert!((2.5 * NS / PS - 2500.0).abs() < 1e-9);
    }
}
