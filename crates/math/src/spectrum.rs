//! Sampled time series and spectral analysis.
//!
//! This module is the Rust equivalent of the paper's "Matlab
//! post-processing": it turns recorded `Mx(t)` probe signals into the
//! per-frequency amplitudes and phases (Fig. 3) and band-pass
//! reconstructed per-channel traces (Fig. 4).

use crate::complex::Complex64;
use crate::error::MathError;
use crate::fft;
use crate::window::Window;

/// A uniformly sampled real-valued time series.
///
/// # Examples
///
/// ```
/// use magnon_math::spectrum::TimeSeries;
///
/// # fn main() -> Result<(), magnon_math::MathError> {
/// let dt = 1e-12;
/// let f = 25.0e9;
/// let samples: Vec<f64> = (0..2048)
///     .map(|i| (2.0 * std::f64::consts::PI * f * dt * i as f64).sin())
///     .collect();
/// let ts = TimeSeries::new(dt, samples)?;
/// let tone = ts.goertzel(f)?;
/// assert!((tone.abs() - 1.0).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    dt: f64,
    samples: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from a sampling interval `dt` (seconds) and
    /// samples.
    ///
    /// # Errors
    ///
    /// * [`MathError::InvalidScale`] if `dt` is not positive and finite.
    /// * [`MathError::EmptyInput`] if `samples` is empty.
    pub fn new(dt: f64, samples: Vec<f64>) -> Result<Self, MathError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(MathError::InvalidScale {
                name: "dt",
                value: dt,
            });
        }
        if samples.is_empty() {
            return Err(MathError::EmptyInput);
        }
        Ok(TimeSeries { dt, samples })
    }

    /// Sampling interval in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the series holds no samples (never true for a
    /// constructed series).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total duration covered by the series in seconds.
    pub fn duration(&self) -> f64 {
        self.dt * self.samples.len() as f64
    }

    /// Nyquist frequency in Hz.
    pub fn nyquist(&self) -> f64 {
        0.5 / self.dt
    }

    /// The time coordinate of sample `i`.
    pub fn time_at(&self, i: usize) -> f64 {
        self.dt * i as f64
    }

    /// Returns a sub-series starting at time `t_start` (seconds),
    /// discarding earlier samples. Used to drop the transient before
    /// steady-state spectral analysis.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::EmptyInput`] when nothing remains.
    pub fn after(&self, t_start: f64) -> Result<TimeSeries, MathError> {
        let skip = (t_start / self.dt).ceil().max(0.0) as usize;
        if skip >= self.samples.len() {
            return Err(MathError::EmptyInput);
        }
        TimeSeries::new(self.dt, self.samples[skip..].to_vec())
    }

    /// Single-bin DFT (Goertzel algorithm) at an arbitrary frequency.
    ///
    /// Returns the complex amplitude normalised such that a pure tone
    /// `A·sin(2πft + φ)` yields magnitude ≈ `A`. The returned phase is
    /// the phase of the complex exponential representation
    /// `A·e^{i(2πft + θ)}` with `θ = arg − π/2` for sine input.
    ///
    /// # Errors
    ///
    /// * [`MathError::InvalidScale`] for a non-positive frequency.
    /// * [`MathError::AboveNyquist`] when `frequency` ≥ Nyquist.
    pub fn goertzel(&self, frequency: f64) -> Result<Complex64, MathError> {
        if !(frequency.is_finite() && frequency > 0.0) {
            return Err(MathError::InvalidScale {
                name: "frequency",
                value: frequency,
            });
        }
        if frequency >= self.nyquist() {
            return Err(MathError::AboveNyquist {
                frequency,
                nyquist: self.nyquist(),
            });
        }
        let n = self.samples.len() as f64;
        let omega = 2.0 * std::f64::consts::PI * frequency * self.dt;
        // Direct correlation; numerically robust for arbitrary (non-bin)
        // frequencies, unlike the classic recursive Goertzel update.
        let mut acc = Complex64::ZERO;
        for (i, &x) in self.samples.iter().enumerate() {
            acc += Complex64::cis(-omega * i as f64) * x;
        }
        // One-sided amplitude normalisation: X/N * 2.
        Ok(acc.scale(2.0 / n))
    }

    /// Amplitude of the tone at `frequency` (convenience for
    /// `goertzel(f)?.abs()`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TimeSeries::goertzel`].
    pub fn amplitude_at(&self, frequency: f64) -> Result<f64, MathError> {
        Ok(self.goertzel(frequency)?.abs())
    }

    /// Phase (radians, `(-π, π]`) of the tone at `frequency`, relative to
    /// a cosine at the start of the record.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TimeSeries::goertzel`].
    pub fn phase_at(&self, frequency: f64) -> Result<f64, MathError> {
        Ok(self.goertzel(frequency)?.arg())
    }

    /// Computes the windowed amplitude spectrum.
    ///
    /// # Errors
    ///
    /// Propagates FFT errors (cannot occur for a constructed series, as
    /// padding rounds the length up to a power of two).
    pub fn spectrum(&self, window: Window) -> Result<Spectrum, MathError> {
        let mut buf = self.samples.clone();
        let gain = window.apply(&mut buf);
        let spec = fft::fft_real(&buf)?;
        let n = spec.len();
        let df = 1.0 / (self.dt * n as f64);
        // One-sided amplitude spectrum, corrected for window gain.
        let half = n / 2;
        let mut amplitudes = Vec::with_capacity(half + 1);
        let norm = 2.0 / (self.samples.len() as f64 * gain);
        for (k, z) in spec.iter().take(half + 1).enumerate() {
            let scale = if k == 0 { norm / 2.0 } else { norm };
            amplitudes.push(z.abs() * scale);
        }
        Ok(Spectrum { df, amplitudes })
    }

    /// Band-pass filters the series around `f_center` with full width
    /// `bandwidth`, via FFT masking, returning the reconstructed
    /// time-domain trace (the per-channel output curves of the paper's
    /// Fig. 4).
    ///
    /// # Errors
    ///
    /// * [`MathError::InvalidScale`] for non-positive `f_center` or
    ///   `bandwidth`.
    /// * [`MathError::AboveNyquist`] if the band extends beyond Nyquist.
    pub fn band_pass(&self, f_center: f64, bandwidth: f64) -> Result<TimeSeries, MathError> {
        if !(f_center.is_finite() && f_center > 0.0) {
            return Err(MathError::InvalidScale {
                name: "f_center",
                value: f_center,
            });
        }
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(MathError::InvalidScale {
                name: "bandwidth",
                value: bandwidth,
            });
        }
        if f_center + bandwidth / 2.0 >= self.nyquist() {
            return Err(MathError::AboveNyquist {
                frequency: f_center + bandwidth / 2.0,
                nyquist: self.nyquist(),
            });
        }
        let n_orig = self.samples.len();
        let mut data: Vec<Complex64> = self
            .samples
            .iter()
            .map(|&x| Complex64::new(x, 0.0))
            .collect();
        data.resize(fft::next_power_of_two_len(n_orig), Complex64::ZERO);
        fft::fft_in_place(&mut data)?;
        let n = data.len();
        let df = 1.0 / (self.dt * n as f64);
        let lo = f_center - bandwidth / 2.0;
        let hi = f_center + bandwidth / 2.0;
        for (k, z) in data.iter_mut().enumerate() {
            let f = if k <= n / 2 {
                k as f64 * df
            } else {
                (n - k) as f64 * df
            };
            if f < lo || f > hi {
                *z = Complex64::ZERO;
            }
        }
        fft::ifft_in_place(&mut data)?;
        let samples: Vec<f64> = data.iter().take(n_orig).map(|z| z.re).collect();
        TimeSeries::new(self.dt, samples)
    }

    /// Root-mean-square of the samples.
    pub fn rms(&self) -> f64 {
        let sum_sq: f64 = self.samples.iter().map(|x| x * x).sum();
        (sum_sq / self.samples.len() as f64).sqrt()
    }

    /// Largest absolute sample value.
    pub fn peak(&self) -> f64 {
        self.samples.iter().fold(0.0f64, |acc, &x| acc.max(x.abs()))
    }
}

/// One-sided amplitude spectrum produced by [`TimeSeries::spectrum`].
///
/// # Examples
///
/// ```
/// use magnon_math::spectrum::TimeSeries;
/// use magnon_math::window::Window;
///
/// # fn main() -> Result<(), magnon_math::MathError> {
/// let dt = 1e-12;
/// let samples: Vec<f64> = (0..4096)
///     .map(|i| (2.0 * std::f64::consts::PI * 20e9 * dt * i as f64).sin())
///     .collect();
/// let spec = TimeSeries::new(dt, samples)?.spectrum(Window::Hann)?;
/// let (f_peak, a_peak) = spec.peaks(1, 0.0)[0];
/// assert!((f_peak - 20e9).abs() < spec.frequency_resolution());
/// assert!((a_peak - 1.0).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    df: f64,
    amplitudes: Vec<f64>,
}

impl Spectrum {
    /// Frequency spacing between bins in Hz.
    pub fn frequency_resolution(&self) -> f64 {
        self.df
    }

    /// One-sided bin amplitudes (index 0 = DC).
    pub fn amplitudes(&self) -> &[f64] {
        &self.amplitudes
    }

    /// Frequency of bin `k` in Hz.
    pub fn frequency_at(&self, k: usize) -> f64 {
        self.df * k as f64
    }

    /// Amplitude near `frequency`, taking the maximum over the
    /// ±1 neighbouring bins to tolerate bin misalignment.
    pub fn amplitude_near(&self, frequency: f64) -> f64 {
        if self.amplitudes.is_empty() {
            return 0.0;
        }
        let k = (frequency / self.df).round() as isize;
        let lo = (k - 1).max(0) as usize;
        let hi = ((k + 1) as usize).min(self.amplitudes.len() - 1);
        self.amplitudes[lo..=hi]
            .iter()
            .fold(0.0f64, |acc, &a| acc.max(a))
    }

    /// Returns up to `count` local maxima above `min_amplitude`, sorted
    /// by descending amplitude, as `(frequency, amplitude)` pairs.
    pub fn peaks(&self, count: usize, min_amplitude: f64) -> Vec<(f64, f64)> {
        let a = &self.amplitudes;
        let mut found: Vec<(f64, f64)> = Vec::new();
        for k in 1..a.len().saturating_sub(1) {
            if a[k] > a[k - 1] && a[k] >= a[k + 1] && a[k] > min_amplitude {
                found.push((self.frequency_at(k), a[k]));
            }
        }
        found.sort_by(|x, y| y.1.total_cmp(&x.1));
        found.truncate(count);
        found
    }

    /// Total spectral power excluding the bands `±half_width` around each
    /// listed frequency — the out-of-channel leakage used by the
    /// crosstalk analysis.
    pub fn power_outside(&self, channels: &[f64], half_width: f64) -> f64 {
        self.amplitudes
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(k, _)| {
                let f = self.frequency_at(*k);
                channels.iter().all(|&c| (f - c).abs() > half_width)
            })
            .map(|(_, &a)| a * a)
            .sum()
    }

    /// Total spectral power inside the bands `±half_width` around the
    /// listed frequencies.
    pub fn power_inside(&self, channels: &[f64], half_width: f64) -> f64 {
        self.amplitudes
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(k, _)| {
                let f = self.frequency_at(*k);
                channels.iter().any(|&c| (f - c).abs() <= half_width)
            })
            .map(|(_, &a)| a * a)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(dt: f64, n: usize, f: f64, amp: f64, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * PI * f * dt * i as f64 + phase).sin())
            .collect()
    }

    #[test]
    fn constructor_validates() {
        assert!(matches!(
            TimeSeries::new(0.0, vec![1.0]),
            Err(MathError::InvalidScale { .. })
        ));
        assert!(matches!(
            TimeSeries::new(-1e-12, vec![1.0]),
            Err(MathError::InvalidScale { .. })
        ));
        assert_eq!(TimeSeries::new(1e-12, vec![]), Err(MathError::EmptyInput));
    }

    #[test]
    fn basic_accessors() {
        let ts = TimeSeries::new(2e-12, vec![0.0; 100]).unwrap();
        assert_eq!(ts.len(), 100);
        assert!(!ts.is_empty());
        assert!((ts.duration() - 200e-12).abs() < 1e-24);
        assert!((ts.nyquist() - 2.5e11).abs() < 1.0);
        assert!((ts.time_at(10) - 20e-12).abs() < 1e-24);
    }

    #[test]
    fn goertzel_amplitude_and_phase_of_pure_tone() {
        let dt = 1e-12;
        let f = 10e9;
        // Use a whole number of periods: 10 GHz at 1 ps -> 100 samples/period.
        let ts = TimeSeries::new(dt, tone(dt, 2000, f, 0.7, 0.0)).unwrap();
        let z = ts.goertzel(f).unwrap();
        assert!((z.abs() - 0.7).abs() < 1e-9);
        // sin(ωt) = cos(ωt - π/2): correlating against e^{-iωt} gives arg -π/2.
        assert!((z.arg() + PI / 2.0).abs() < 1e-9);
    }

    #[test]
    fn goertzel_detects_phase_flip() {
        let dt = 1e-12;
        let f = 10e9;
        let ts0 = TimeSeries::new(dt, tone(dt, 2000, f, 1.0, 0.0)).unwrap();
        let ts1 = TimeSeries::new(dt, tone(dt, 2000, f, 1.0, PI)).unwrap();
        let dphi = (ts1.phase_at(f).unwrap() - ts0.phase_at(f).unwrap()).abs();
        let wrapped = (dphi - PI).abs().min((dphi + PI).abs()).min(dphi - PI);
        assert!((dphi - PI).abs() < 1e-9 || wrapped.abs() < 1e-9);
    }

    #[test]
    fn goertzel_rejects_bad_frequencies() {
        let ts = TimeSeries::new(1e-12, vec![0.0; 64]).unwrap();
        assert!(matches!(
            ts.goertzel(-1.0),
            Err(MathError::InvalidScale { .. })
        ));
        assert!(matches!(
            ts.goertzel(6e11),
            Err(MathError::AboveNyquist { .. })
        ));
    }

    #[test]
    fn goertzel_separates_two_tones() {
        let dt = 1e-12;
        let n = 4000;
        let mut s = tone(dt, n, 10e9, 1.0, 0.0);
        for (a, b) in s.iter_mut().zip(tone(dt, n, 30e9, 0.25, 0.0)) {
            *a += b;
        }
        let ts = TimeSeries::new(dt, s).unwrap();
        assert!((ts.amplitude_at(10e9).unwrap() - 1.0).abs() < 0.01);
        assert!((ts.amplitude_at(30e9).unwrap() - 0.25).abs() < 0.01);
        assert!(ts.amplitude_at(20e9).unwrap() < 0.01);
    }

    #[test]
    fn after_drops_transient() {
        let dt = 1e-12;
        let mut s = vec![5.0; 100];
        s.extend(vec![1.0; 100]);
        let ts = TimeSeries::new(dt, s).unwrap();
        let tail = ts.after(100e-12).unwrap();
        assert_eq!(tail.len(), 100);
        assert!(tail.samples().iter().all(|&x| x == 1.0));
        assert!(ts.after(1.0).is_err());
    }

    #[test]
    fn spectrum_peak_matches_tone() {
        let dt = 1e-12;
        let f = 40e9;
        let ts = TimeSeries::new(dt, tone(dt, 4096, f, 2.0, 0.3)).unwrap();
        let spec = ts.spectrum(Window::Hann).unwrap();
        let peaks = spec.peaks(1, 0.0);
        assert_eq!(peaks.len(), 1);
        assert!((peaks[0].0 - f).abs() <= spec.frequency_resolution());
        assert!((peaks[0].1 - 2.0).abs() < 0.2);
    }

    #[test]
    fn spectrum_amplitude_near_tolerates_misalignment() {
        let dt = 1e-12;
        // Frequency deliberately off-bin.
        let f = 13.37e9;
        let ts = TimeSeries::new(dt, tone(dt, 4096, f, 1.0, 0.0)).unwrap();
        let spec = ts.spectrum(Window::Hann).unwrap();
        assert!(spec.amplitude_near(f) > 0.7);
    }

    #[test]
    fn spectrum_multi_peak_ordering() {
        let dt = 1e-12;
        let n = 8192;
        let mut s = tone(dt, n, 10e9, 0.5, 0.0);
        for (a, b) in s.iter_mut().zip(tone(dt, n, 50e9, 1.5, 0.0)) {
            *a += b;
        }
        let ts = TimeSeries::new(dt, s).unwrap();
        let spec = ts.spectrum(Window::Hann).unwrap();
        let peaks = spec.peaks(2, 0.05);
        assert_eq!(peaks.len(), 2);
        assert!((peaks[0].0 - 50e9).abs() < 2.0 * spec.frequency_resolution());
        assert!((peaks[1].0 - 10e9).abs() < 2.0 * spec.frequency_resolution());
    }

    #[test]
    fn band_pass_isolates_channel() {
        let dt = 1e-12;
        let n = 4096;
        let mut s = tone(dt, n, 10e9, 1.0, 0.0);
        for (a, b) in s.iter_mut().zip(tone(dt, n, 30e9, 1.0, 0.0)) {
            *a += b;
        }
        let ts = TimeSeries::new(dt, s).unwrap();
        let only10 = ts.band_pass(10e9, 8e9).unwrap();
        // The reconstructed trace should be almost a pure 10 GHz tone.
        assert!((only10.amplitude_at(10e9).unwrap() - 1.0).abs() < 0.05);
        assert!(only10.amplitude_at(30e9).unwrap() < 0.05);
        assert_eq!(only10.len(), ts.len());
    }

    #[test]
    fn band_pass_validates_inputs() {
        let ts = TimeSeries::new(1e-12, vec![0.0; 64]).unwrap();
        assert!(ts.band_pass(-1.0, 1e9).is_err());
        assert!(ts.band_pass(1e9, 0.0).is_err());
        assert!(ts.band_pass(4.999e11, 1e9).is_err());
    }

    #[test]
    fn power_inside_outside_partition() {
        let dt = 1e-12;
        let n = 4096;
        let mut s = tone(dt, n, 10e9, 1.0, 0.0);
        for (a, b) in s.iter_mut().zip(tone(dt, n, 30e9, 0.5, 0.0)) {
            *a += b;
        }
        let ts = TimeSeries::new(dt, s).unwrap();
        let spec = ts.spectrum(Window::Hann).unwrap();
        let inside = spec.power_inside(&[10e9, 30e9], 2e9);
        let outside = spec.power_outside(&[10e9, 30e9], 2e9);
        assert!(
            inside > 100.0 * outside,
            "inside={inside}, outside={outside}"
        );
    }

    #[test]
    fn rms_and_peak() {
        let dt = 1e-12;
        let ts = TimeSeries::new(dt, tone(dt, 10_000, 10e9, 2.0, 0.0)).unwrap();
        assert!((ts.rms() - 2.0 / 2.0f64.sqrt()).abs() < 1e-3);
        assert!((ts.peak() - 2.0).abs() < 1e-3);
    }
}
