//! Gilbert-damping lifetimes and propagation losses.
//!
//! Spin-wave amplitude decays as `e^{−t/τ}` with `τ = 1/(α ω)`; a
//! packet travelling at the group velocity therefore decays over the
//! attenuation length `L = v_g τ`. These losses drive the paper's
//! scalability discussion (§V): sources farther from the output must be
//! excited harder so all waves reach the functional region with equal
//! amplitude.

use crate::dispersion::DispersionRelation;
use crate::error::PhysicsError;

/// Amplitude-loss model for propagating spin waves in a waveguide with
/// Gilbert damping `α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DampingModel {
    alpha: f64,
}

impl DampingModel {
    /// Creates a model for Gilbert damping `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidMaterial`] for `alpha` outside
    /// `(0, 1)`.
    pub fn new(alpha: f64) -> Result<Self, PhysicsError> {
        if !(alpha.is_finite() && alpha > 0.0 && alpha < 1.0) {
            return Err(PhysicsError::InvalidMaterial {
                parameter: "gilbert_damping",
                value: alpha,
            });
        }
        Ok(DampingModel { alpha })
    }

    /// The Gilbert damping constant.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Amplitude lifetime `τ = 1/(α ω)` in seconds for a wave at
    /// `frequency` (Hz).
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidGeometry`] for a non-positive
    /// frequency.
    pub fn lifetime(&self, frequency: f64) -> Result<f64, PhysicsError> {
        if !(frequency.is_finite() && frequency > 0.0) {
            return Err(PhysicsError::InvalidGeometry {
                parameter: "frequency",
                value: frequency,
            });
        }
        Ok(1.0 / (self.alpha * 2.0 * std::f64::consts::PI * frequency))
    }

    /// Attenuation length `L = v_g τ` in metres for a wave at
    /// `frequency` on the given dispersion branch.
    ///
    /// # Errors
    ///
    /// Propagates dispersion-inversion errors for frequencies at or
    /// below FMR.
    pub fn attenuation_length<D: DispersionRelation + ?Sized>(
        &self,
        dispersion: &D,
        frequency: f64,
    ) -> Result<f64, PhysicsError> {
        let k = dispersion.wavenumber(frequency)?;
        let vg = dispersion.group_velocity(k);
        Ok(vg * self.lifetime(frequency)?)
    }

    /// Remaining amplitude fraction after propagating `distance` metres
    /// at `frequency`.
    ///
    /// # Errors
    ///
    /// Propagates dispersion-inversion errors; rejects negative
    /// distances.
    pub fn amplitude_after<D: DispersionRelation + ?Sized>(
        &self,
        dispersion: &D,
        frequency: f64,
        distance: f64,
    ) -> Result<f64, PhysicsError> {
        if !(distance.is_finite() && distance >= 0.0) {
            return Err(PhysicsError::InvalidGeometry {
                parameter: "distance",
                value: distance,
            });
        }
        let l = self.attenuation_length(dispersion, frequency)?;
        Ok((-distance / l).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispersion::ExchangeDispersion;
    use crate::material::Material;
    use magnon_math::constants::{GHZ, NM, UM};

    fn model() -> (DampingModel, ExchangeDispersion) {
        let m = Material::fe_co_b();
        (
            DampingModel::new(m.gilbert_damping()).unwrap(),
            ExchangeDispersion::new(&m, 1.0).unwrap(),
        )
    }

    #[test]
    fn alpha_validation() {
        assert!(DampingModel::new(0.0).is_err());
        assert!(DampingModel::new(1.0).is_err());
        assert!(DampingModel::new(f64::NAN).is_err());
        assert!(DampingModel::new(0.004).is_ok());
    }

    #[test]
    fn lifetime_inverse_in_frequency() {
        let (d, _) = model();
        let t10 = d.lifetime(10.0 * GHZ).unwrap();
        let t80 = d.lifetime(80.0 * GHZ).unwrap();
        assert!((t10 / t80 - 8.0).abs() < 1e-9);
        assert!(d.lifetime(-1.0).is_err());
    }

    #[test]
    fn attenuation_lengths_micron_scale() {
        // FeCoB at α=0.004: attenuation lengths of a few microns —
        // comfortably larger than the sub-micron gate, as the paper
        // requires for correct operation.
        let (d, disp) = model();
        for f in [10.0 * GHZ, 40.0 * GHZ, 80.0 * GHZ] {
            let l = d.attenuation_length(&disp, f).unwrap();
            assert!(l > 0.5 * UM && l < 10.0 * UM, "L({f}) = {l}");
        }
    }

    #[test]
    fn amplitude_decay_monotone_in_distance() {
        let (d, disp) = model();
        let a100 = d.amplitude_after(&disp, 20.0 * GHZ, 100.0 * NM).unwrap();
        let a500 = d.amplitude_after(&disp, 20.0 * GHZ, 500.0 * NM).unwrap();
        assert!(a100 > a500);
        assert!(a100 < 1.0 && a100 > 0.8);
        assert_eq!(d.amplitude_after(&disp, 20.0 * GHZ, 0.0).unwrap(), 1.0);
        assert!(d.amplitude_after(&disp, 20.0 * GHZ, -1.0).is_err());
    }

    #[test]
    fn decay_composes_multiplicatively() {
        let (d, disp) = model();
        let a1 = d.amplitude_after(&disp, 30.0 * GHZ, 200.0 * NM).unwrap();
        let a2 = d.amplitude_after(&disp, 30.0 * GHZ, 300.0 * NM).unwrap();
        let a3 = d.amplitude_after(&disp, 30.0 * GHZ, 500.0 * NM).unwrap();
        assert!((a1 * a2 - a3).abs() < 1e-12);
    }

    #[test]
    fn below_fmr_propagates_error() {
        let (d, disp) = model();
        assert!(d.attenuation_length(&disp, 1.0 * GHZ).is_err());
    }
}
