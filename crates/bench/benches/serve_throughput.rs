//! SERVE bench: direct batched evaluation vs scheduler-served traffic
//! at widths 8/16/32 and 1/2/4 worker shards.
//!
//! The served load spans four gate instances on four distinct
//! waveguides (`wg0..wg3`), requests round-robined across them, so the
//! worker axis exercises real routing: 1 worker serves all four
//! waveguides from one shard, 4 workers give each waveguide its own
//! shard. Three serving modes per width:
//!
//! * `direct_batch_256` — one `evaluate_batch` call on a warm cached
//!   session (the PR 1 `batch_throughput` ceiling; no runtime between
//!   caller and backend, and no multi-waveguide routing);
//! * `serve_sync_x256/w{N}` — single-request serving: each request is
//!   submitted and awaited before the next, so no two requests can
//!   share a drain cycle;
//! * `serve_coalesced_256/w{N}` — batchable load: all 256 requests are
//!   submitted up front and awaited afterwards, letting every shard
//!   coalesce its share into large drain cycles.
//!
//! The acceptance comparison is coalesced ≥ sync at every width/worker
//! count: coalescing must pay for the queueing it rides on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use magnon_bench::random_operand_sets;
use magnon_core::backend::BackendChoice;
use magnon_core::gate::{ParallelGate, ParallelGateBuilder, WaveguideId};
use magnon_math::constants::GHZ;
use magnon_physics::waveguide::Waveguide;
use magnon_serve::{AdaptiveConfig, GateId, Scheduler, SchedulerBuilder, ServeConfig};
use std::hint::black_box;
use std::time::Duration;

const BATCH: usize = 256;
const WAVEGUIDES: u64 = 4;

fn gate_with_width(n: usize, waveguide: WaveguideId) -> ParallelGate {
    ParallelGateBuilder::new(Waveguide::paper_default().expect("waveguide"))
        .channels(n)
        .inputs(3)
        .base_frequency(10.0 * GHZ)
        .frequency_step(4.0 * GHZ)
        .on_waveguide(waveguide)
        .build()
        .expect("gate")
}

/// One scheduler serving the same gate design on WAVEGUIDES distinct
/// waveguides, so worker counts shard the load for real.
fn scheduler_for(n: usize, workers: usize) -> (Scheduler, Vec<GateId>) {
    // Static policies: this bench baselines the PR 2 runtime; the
    // adaptive comparison lives in `serve_skew.rs`.
    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        workers,
        max_batch: BATCH,
        linger: Duration::from_micros(100),
        queue_depth: BATCH,
        lut_dir: None,
        adaptive: AdaptiveConfig::off(),
    });
    let ids = (0..WAVEGUIDES)
        .map(|wg| {
            builder
                .register(
                    format!("maj3_wg{wg}"),
                    gate_with_width(n, WaveguideId(wg)),
                    BackendChoice::Cached,
                )
                .expect("register")
        })
        .collect();
    let scheduler = builder.build().expect("scheduler");
    (scheduler, ids)
}

fn bench_serve(c: &mut Criterion) {
    for n in [8usize, 16, 32] {
        let gate = gate_with_width(n, WaveguideId(0));
        let sets = random_operand_sets(&gate, BATCH).expect("operand sets");
        let mut group = c.benchmark_group(format!("serve_w{n}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements((BATCH * n) as u64));

        // Ceiling: one direct batch on a warm cached session.
        let mut direct = gate.session(BackendChoice::Cached).expect("session");
        direct.evaluate_batch(&sets).expect("warm the LUT");
        group.bench_function("direct_batch_256", |b| {
            b.iter(|| black_box(direct.evaluate_batch(black_box(&sets)).expect("batch")))
        });

        for workers in [1usize, 2, 4] {
            let (scheduler, ids) = scheduler_for(n, workers);
            // Round-robin the load across the four waveguides.
            let routed: Vec<(GateId, _)> = sets
                .iter()
                .enumerate()
                .map(|(i, set)| (ids[i % ids.len()], set.clone()))
                .collect();
            // Warm every shard's LUT before timing.
            scheduler.evaluate_many(&routed).expect("warmup");

            // Single-request serving: submit → wait → next.
            group.bench_function(format!("serve_sync_x256/w{workers}"), |b| {
                b.iter(|| {
                    for (id, set) in &routed {
                        let ticket = scheduler
                            .submit(*id, black_box(set.clone()))
                            .expect("submit");
                        black_box(ticket.wait().expect("wait"));
                    }
                })
            });

            // Batchable load: submit all, then wait — coalescing on.
            group.bench_function(format!("serve_coalesced_256/w{workers}"), |b| {
                b.iter(|| {
                    let tickets: Vec<_> = routed
                        .iter()
                        .map(|(id, set)| scheduler.submit(*id, set.clone()).expect("submit"))
                        .collect();
                    for ticket in tickets {
                        black_box(ticket.wait().expect("wait"));
                    }
                })
            });

            let stats = scheduler.stats();
            println!(
                "  [w{workers}] drains={} mean_drain={:.1} max_drain={} coalesced={}",
                stats.drain_passes,
                stats.mean_drain(),
                stats.max_drain,
                stats.coalesced_requests
            );
            scheduler.shutdown().expect("shutdown");
        }
        group.finish();
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
