//! In-plane magnetostatic spin-wave branches: BVMSW and MSSW.
//!
//! The paper's §II lists the spin-wave families — forward volume
//! (FVMSW, used by the gate because its in-plane propagation is
//! isotropic), backward volume (BVMSW, k ∥ M in plane) and surface
//! waves (MSSW/Damon–Eshbach, k ⊥ M in plane). The in-plane branches
//! are provided here for completeness and for comparative studies; both
//! use the standard dipole-exchange expressions for the lowest
//! thickness mode of an in-plane magnetized film:
//!
//! * BVMSW: `ω² = ω_h (ω_h + ω_M (1 − F(kd)))` — *backward*: the
//!   magnetostatic part of the group velocity is negative at small `kd`
//!   until exchange takes over.
//! * MSSW:  `ω² = ω_h (ω_h + ω_M) + (ω_M²/4)(1 − e^{−2kd})` — surface
//!   localised, always forward.
//!
//! with `ω_h = ω_H + ω_M λ_ex² k²` and `F(x) = 1 − (1 − e^{−x})/x`.

use crate::dispersion::DispersionRelation;
use crate::error::PhysicsError;
use crate::material::Material;
use magnon_math::constants::{GAMMA_E, MU_0};
use magnon_math::roots;

fn shape_factor(x: f64) -> f64 {
    if x < 1e-6 {
        x / 2.0 - x * x / 6.0
    } else {
        1.0 + (-x).exp_m1() / x
    }
}

/// Shared parameters of the in-plane branches.
#[derive(Debug, Clone, Copy, PartialEq)]
struct InPlaneFilm {
    /// ω_H = γ μ₀ H_i (rad/s) from the in-plane internal field.
    omega_h0: f64,
    /// ω_M = γ μ₀ Ms (rad/s).
    omega_m: f64,
    /// λ_ex² (m²).
    lambda_ex_sq: f64,
    /// Film thickness (m).
    thickness: f64,
}

impl InPlaneFilm {
    fn new(material: &Material, applied_field: f64, thickness: f64) -> Result<Self, PhysicsError> {
        if !(applied_field.is_finite() && applied_field > 0.0) {
            return Err(PhysicsError::InvalidGeometry {
                parameter: "applied_field",
                value: applied_field,
            });
        }
        if !(thickness.is_finite() && thickness > 0.0) {
            return Err(PhysicsError::InvalidGeometry {
                parameter: "thickness",
                value: thickness,
            });
        }
        Ok(InPlaneFilm {
            omega_h0: GAMMA_E * MU_0 * applied_field,
            omega_m: material.omega_m(),
            lambda_ex_sq: material.exchange_length_sq(),
            thickness,
        })
    }

    fn omega_h(&self, k: f64) -> f64 {
        self.omega_h0 + self.omega_m * self.lambda_ex_sq * k * k
    }
}

/// Backward-volume magnetostatic spin waves (k parallel to in-plane M).
///
/// # Examples
///
/// ```
/// use magnon_physics::magnetostatic::BackwardVolumeDispersion;
/// use magnon_physics::dispersion::DispersionRelation;
/// use magnon_physics::material::Material;
///
/// # fn main() -> Result<(), magnon_physics::PhysicsError> {
/// let d = BackwardVolumeDispersion::new(&Material::yig(), 2.0e4, 30.0e-9)?;
/// // Backward character: frequency *decreases* with k at small k.
/// assert!(d.frequency(1.0e5) > d.frequency(2.0e6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackwardVolumeDispersion {
    film: InPlaneFilm,
}

impl BackwardVolumeDispersion {
    /// Builds the BVMSW branch for a film of `thickness` under an
    /// in-plane `applied_field` (A/m).
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidGeometry`] for non-positive field
    /// or thickness.
    pub fn new(
        material: &Material,
        applied_field: f64,
        thickness: f64,
    ) -> Result<Self, PhysicsError> {
        Ok(BackwardVolumeDispersion {
            film: InPlaneFilm::new(material, applied_field, thickness)?,
        })
    }

    /// Frequency in Hz at wavenumber `k` (rad/m).
    pub fn frequency(&self, k: f64) -> f64 {
        let wh = self.film.omega_h(k);
        let f_factor = 1.0 - shape_factor(k * self.film.thickness);
        (wh * (wh + self.film.omega_m * f_factor)).sqrt() / (2.0 * std::f64::consts::PI)
    }

    /// The frequency minimum (bottom of the backward band): `(k_min,
    /// f_min)` located numerically.
    pub fn band_minimum(&self) -> (f64, f64) {
        // Scan then refine: the minimum sits where dipole decrease and
        // exchange increase balance, k ~ 1/sqrt(λ_ex d).
        let mut best = (0.0, self.frequency(0.0));
        for i in 1..4000 {
            let k = i as f64 * 5.0e4;
            let f = self.frequency(k);
            if f < best.1 {
                best = (k, f);
            }
        }
        best
    }
}

/// Magnetostatic surface (Damon–Eshbach) spin waves (k perpendicular to
/// in-plane M).
///
/// # Examples
///
/// ```
/// use magnon_physics::magnetostatic::SurfaceDispersion;
/// use magnon_physics::dispersion::DispersionRelation;
/// use magnon_physics::material::Material;
///
/// # fn main() -> Result<(), magnon_physics::PhysicsError> {
/// let d = SurfaceDispersion::new(&Material::yig(), 2.0e4, 30.0e-9)?;
/// let k = d.wavenumber(3.0e9)?;
/// assert!((d.frequency(k) - 3.0e9).abs() < 1.0e3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceDispersion {
    film: InPlaneFilm,
}

impl SurfaceDispersion {
    /// Builds the MSSW branch for a film of `thickness` under an
    /// in-plane `applied_field` (A/m).
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidGeometry`] for non-positive field
    /// or thickness.
    pub fn new(
        material: &Material,
        applied_field: f64,
        thickness: f64,
    ) -> Result<Self, PhysicsError> {
        Ok(SurfaceDispersion {
            film: InPlaneFilm::new(material, applied_field, thickness)?,
        })
    }
}

impl DispersionRelation for SurfaceDispersion {
    fn frequency(&self, k: f64) -> f64 {
        let wh = self.film.omega_h(k);
        let wm = self.film.omega_m;
        let x = 2.0 * k * self.film.thickness;
        let surface = wm * wm / 4.0 * (-(-x).exp_m1());
        (wh * (wh + wm) + surface).sqrt() / (2.0 * std::f64::consts::PI)
    }

    fn wavenumber(&self, frequency: f64) -> Result<f64, PhysicsError> {
        let fmr = self.fmr_frequency();
        if !(frequency.is_finite() && frequency > fmr) {
            return Err(PhysicsError::FrequencyBelowFmr { frequency, fmr });
        }
        let objective = |k: f64| self.frequency(k) - frequency;
        let (lo, hi) = roots::expand_bracket(objective, 0.0, 1.0e6, 80)?;
        Ok(roots::brent(objective, lo, hi, 1e-6, 200)?.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_math::constants::{GHZ, NM};

    fn yig_film() -> (Material, f64, f64) {
        (Material::yig(), 2.0e4, 30.0 * NM)
    }

    #[test]
    fn validation() {
        let (m, _, t) = yig_film();
        assert!(BackwardVolumeDispersion::new(&m, 0.0, t).is_err());
        assert!(BackwardVolumeDispersion::new(&m, 2.0e4, -1.0).is_err());
        assert!(SurfaceDispersion::new(&m, f64::NAN, t).is_err());
    }

    #[test]
    fn bvmsw_is_backward_at_small_k() {
        let (m, h, t) = yig_film();
        let d = BackwardVolumeDispersion::new(&m, h, t).unwrap();
        // Frequency decreases from the k=0 point into the band.
        let f0 = d.frequency(1.0e5);
        let f1 = d.frequency(2.0e6);
        assert!(
            f1 < f0,
            "BVMSW must be backward: f(k small)={f0}, f(k)={f1}"
        );
    }

    #[test]
    fn bvmsw_band_minimum_exists_then_exchange_wins() {
        let (m, h, t) = yig_film();
        let d = BackwardVolumeDispersion::new(&m, h, t).unwrap();
        let (k_min, f_min) = d.band_minimum();
        assert!(k_min > 0.0);
        assert!(f_min < d.frequency(1.0e4));
        // Beyond the minimum, exchange makes the branch forward again.
        assert!(d.frequency(4.0 * k_min) > f_min);
    }

    #[test]
    fn mssw_lies_above_bvmsw_band() {
        // At the same k, the surface branch has higher frequency than
        // the backward-volume branch (standard ordering).
        let (m, h, t) = yig_film();
        let bv = BackwardVolumeDispersion::new(&m, h, t).unwrap();
        let sw = SurfaceDispersion::new(&m, h, t).unwrap();
        for k in [1.0e5, 1.0e6, 5.0e6] {
            assert!(sw.frequency(k) > bv.frequency(k));
        }
    }

    #[test]
    fn mssw_monotone_and_invertible() {
        let (m, h, t) = yig_film();
        let d = SurfaceDispersion::new(&m, h, t).unwrap();
        let mut last = 0.0;
        for i in 1..100 {
            let k = i as f64 * 2.0e5;
            let f = d.frequency(k);
            assert!(f > last);
            last = f;
        }
        for f in [2.5 * GHZ, 3.0 * GHZ, 5.0 * GHZ] {
            let k = d.wavenumber(f).unwrap();
            assert!((d.frequency(k) - f).abs() / f < 1e-6);
        }
        assert!(d.wavenumber(0.1 * GHZ).is_err());
    }

    #[test]
    fn mssw_k0_limit_is_kittel_like() {
        // At k -> 0 the MSSW frequency approaches sqrt(ω_H (ω_H + ω_M)):
        // the in-plane Kittel FMR.
        let (m, h, t) = yig_film();
        let d = SurfaceDispersion::new(&m, h, t).unwrap();
        let wh = GAMMA_E * MU_0 * h;
        let wm = m.omega_m();
        let kittel = (wh * (wh + wm)).sqrt() / (2.0 * std::f64::consts::PI);
        assert!((d.fmr_frequency() - kittel).abs() / kittel < 1e-9);
    }

    #[test]
    fn branch_degeneracy_at_k0() {
        // All dipolar corrections vanish differently, but at exactly
        // k=0 BVMSW reduces to the same Kittel point as MSSW.
        let (m, h, t) = yig_film();
        let bv = BackwardVolumeDispersion::new(&m, h, t).unwrap();
        let sw = SurfaceDispersion::new(&m, h, t).unwrap();
        let f_bv = bv.frequency(0.0);
        let f_sw = sw.fmr_frequency();
        assert!((f_bv - f_sw).abs() / f_sw < 1e-9);
    }

    #[test]
    fn thicker_films_disperse_more() {
        // The dipolar terms scale with kd: a thicker film departs from
        // the Kittel point faster.
        let (m, h, _) = yig_film();
        let thin = SurfaceDispersion::new(&m, h, 10.0 * NM).unwrap();
        let thick = SurfaceDispersion::new(&m, h, 100.0 * NM).unwrap();
        let k = 1.0e6;
        let base = thin.fmr_frequency();
        assert!((thick.frequency(k) - base) > (thin.frequency(k) - base));
    }
}
