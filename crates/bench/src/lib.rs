//! Shared harness for the experiment-reproduction binaries and the
//! criterion benches.
//!
//! Every table and figure of the paper has a `repro_*` binary here (see
//! `src/bin/`) that prints the paper-style rows and writes CSV into
//! `results/`:
//!
//! | Experiment | Binary | Paper artifact |
//! |-----------|--------|----------------|
//! | FIG3 | `repro_fig3` | Fig. 3 — detector spectrum + time response |
//! | FIG4 | `repro_fig4` | Fig. 4 — per-channel output traces |
//! | TAB-AREA | `repro_table_comparison` | §V.B area/delay/energy |
//! | SCALE | `repro_scalability` | §V scalability discussion |
//! | WIDTH | `repro_width` | §V waveguide width variation |
//!
//! Run with `REPRO_FAST=1` to shrink the micromagnetic workloads (fewer
//! channels, shorter runs) for smoke testing.

use magnon_core::backend::OperandSet;
use magnon_core::gate::{ParallelGate, ParallelGateBuilder};
use magnon_core::truth::LogicFunction;
use magnon_core::word::Word;
use magnon_core::GateError;
use magnon_physics::waveguide::Waveguide;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Builds the paper's byte-wide 3-input majority gate (8 channels at
/// 10–80 GHz on the 50 nm × 1 nm FeCoB waveguide).
///
/// # Errors
///
/// Propagates gate construction errors.
pub fn byte_majority_gate() -> Result<ParallelGate, GateError> {
    let guide = Waveguide::paper_default()?;
    ParallelGateBuilder::new(guide)
        .channels(8)
        .inputs(3)
        .function(LogicFunction::Majority)
        .build()
}

/// Builds a reduced gate for fast smoke runs (`REPRO_FAST=1`):
/// 3 channels at 10/20/30 GHz.
///
/// # Errors
///
/// Propagates gate construction errors.
pub fn fast_majority_gate() -> Result<ParallelGate, GateError> {
    let guide = Waveguide::paper_default()?;
    ParallelGateBuilder::new(guide)
        .channels(3)
        .inputs(3)
        .function(LogicFunction::Majority)
        .build()
}

/// `true` when `REPRO_FAST` is set in the environment.
pub fn fast_mode() -> bool {
    std::env::var("REPRO_FAST")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// The gate appropriate for the current mode.
///
/// # Errors
///
/// Propagates gate construction errors.
pub fn experiment_gate() -> Result<ParallelGate, GateError> {
    if fast_mode() {
        fast_majority_gate()
    } else {
        byte_majority_gate()
    }
}

/// Input words that apply the 3-input combination `combo` (bit `j` =
/// input `j`) identically on every channel — the paper's Fig. 3/4 runs.
///
/// # Errors
///
/// Propagates word construction errors.
pub fn combo_words(combo: usize, input_count: usize, width: usize) -> Result<Vec<Word>, GateError> {
    (0..input_count)
        .map(|j| {
            let bit = (combo >> j) & 1 == 1;
            if bit {
                Word::ones(width)
            } else {
                Word::zeros(width)
            }
        })
        .collect()
}

/// Input words that put combination `(c mod 2^m)` on channel `c` — the
/// batched truth-table layout (all combinations in one evaluation when
/// `width = 2^m`).
///
/// # Errors
///
/// Propagates word construction errors.
pub fn batched_combo_words(input_count: usize, width: usize) -> Result<Vec<Word>, GateError> {
    let combos = 1usize << input_count;
    let mut words = vec![Word::zeros(width)?; input_count];
    for c in 0..width {
        let combo = c % combos;
        for (j, w) in words.iter_mut().enumerate() {
            *w = w.with_bit(c, (combo >> j) & 1 == 1)?;
        }
    }
    Ok(words)
}

/// One [`OperandSet`] per input combination, each applying its
/// combination identically on every channel — the batch covering a
/// gate's full truth table, ready for
/// [`magnon_core::backend::GateSession::evaluate_batch`].
///
/// # Errors
///
/// Propagates word construction errors.
pub fn combo_operand_sets(input_count: usize, width: usize) -> Result<Vec<OperandSet>, GateError> {
    (0..1usize << input_count)
        .map(|combo| Ok(OperandSet::new(combo_words(combo, input_count, width)?)))
        .collect()
}

/// Deterministic pseudo-random operand sets for throughput runs.
///
/// # Errors
///
/// Propagates word construction errors.
pub fn random_operand_sets(
    gate: &ParallelGate,
    count: usize,
) -> Result<Vec<OperandSet>, GateError> {
    let n = gate.word_width();
    let m = gate.input_count();
    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    (0..count as u64)
        .map(|i| {
            let words = (0..m as u64)
                .map(|j| {
                    let bits = 0x9E37_79B9_7F4A_7C15u64
                        .wrapping_mul(i + 1)
                        .rotate_left(j as u32 * 11)
                        & mask;
                    Word::from_bits(bits, n)
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(OperandSet::new(words))
        })
        .collect()
}

/// The `results/` directory (created on demand) next to the workspace
/// root, or the current directory as a fallback.
pub fn results_dir() -> PathBuf {
    let candidates = [
        Path::new("results"),
        Path::new("../results"),
        Path::new("../../results"),
    ];
    for c in candidates {
        if c.parent()
            .map(|p| p.as_os_str().is_empty() || p.exists())
            .unwrap_or(true)
        {
            let _ = fs::create_dir_all(c);
            if c.exists() {
                return c.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

/// Writes a CSV file with a header row.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Formats a floating-point value for CSV output.
pub fn fmt_sci(v: f64) -> String {
    format!("{v:.6e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_gate_builds() {
        let gate = byte_majority_gate().unwrap();
        assert_eq!(gate.word_width(), 8);
        assert_eq!(gate.input_count(), 3);
    }

    #[test]
    fn combo_words_encode_combination() {
        let words = combo_words(0b101, 3, 8).unwrap();
        assert_eq!(words.len(), 3);
        assert_eq!(words[0], Word::ones(8).unwrap());
        assert_eq!(words[1], Word::zeros(8).unwrap());
        assert_eq!(words[2], Word::ones(8).unwrap());
    }

    #[test]
    fn batched_words_cover_all_combos() {
        let words = batched_combo_words(3, 8).unwrap();
        // Channel c carries combo c: reconstruct and check.
        for c in 0..8 {
            let combo = (0..3).fold(0usize, |acc, j| {
                acc | ((words[j].bit(c).unwrap() as usize) << j)
            });
            assert_eq!(combo, c);
        }
    }

    #[test]
    fn batched_evaluation_matches_per_combo() {
        let gate = fast_majority_gate().unwrap();
        let n = gate.word_width();
        let batched = batched_combo_words(3, n).unwrap();
        let out = gate.evaluate(&batched).unwrap();
        for c in 0..n {
            let combo = c % 8;
            let per = combo_words(combo, 3, n).unwrap();
            let single = gate.evaluate(&per).unwrap();
            assert_eq!(out.word().bit(c).unwrap(), single.word().bit(c).unwrap());
        }
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("magnon_bench_test.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("a,b\n1,2"));
        let _ = std::fs::remove_file(path);
    }
}
