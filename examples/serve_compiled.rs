//! Compiled circuit serving: whole netlists compile to levelized,
//! FDM-placed plans and run through the scheduler pipelined.
//!
//! The compiler's four passes (validate → levelize → place → emit) turn
//! an 8-bit ripple-carry adder and a hand-built logic unit into
//! [`CompiledCircuit`] plans whose gate nodes are packed onto
//! `(waveguide, lane)` slots — fewer waveguides than gates, with lane
//! bands proven disjoint at compile time. Two client threads then run
//! both plans concurrently over two shards with dependency-aware
//! pipelined submission: every gate request goes out the moment its
//! operands complete, so independent subgraphs interleave inside the
//! scheduler's drain cycles instead of marching level by level:
//!
//! ```text
//! cargo run --release --example serve_compiled
//! ```
//!
//! [`CompiledCircuit`]: spinwave_parallel::compiler::CompiledCircuit

use spinwave_parallel::circuits::adder::RippleCarryAdder;
use spinwave_parallel::circuits::netlist::Circuit;
use spinwave_parallel::compiler::{compile, CompileReport, CompiledCircuit, CompilerConfig};
use spinwave_parallel::core::backend::BackendChoice;
use spinwave_parallel::core::prelude::*;
use spinwave_parallel::core::word::Word;
use spinwave_parallel::physics::waveguide::Waveguide;
use spinwave_parallel::serve::{
    register_compiled, AdaptiveConfig, CircuitExecutor, SchedulerBuilder, ServeConfig,
};
use std::time::{Duration, Instant};

const WIDTH: usize = 8; // channels per wire: 8 independent data sets
const BITS: usize = 8; // adder operand width

/// A small logic unit: AND, OR, XOR, NAND and a majority-mix output
/// over two word inputs — wide (parallel-friendly) and shallow, the
/// opposite shape of the adder's serial carry chain.
fn logic_unit() -> Result<Circuit, Box<dyn std::error::Error>> {
    let mut c = Circuit::new(WIDTH)?;
    let a = c.input();
    let b = c.input();
    let and = c.and2(a, b)?;
    let or = c.or2(a, b)?;
    let xor = c.xor2(a, b)?;
    let nand = c.not(and)?;
    let mix = c.maj3(and, or, xor)?;
    for out in [and, or, xor, nand, mix] {
        c.mark_output(out)?;
    }
    Ok(c)
}

fn print_report(name: &str, report: &CompileReport) {
    println!(
        "{name}: {} gates in {} levels (widest {}), placed on {} slots = {} waveguides x {} lanes",
        (report.gate_counts.maj3 + report.gate_counts.xor2),
        report.depth,
        report.max_level_width,
        report.slot_count,
        report.waveguides_used,
        report.lanes_per_waveguide,
    );
    println!(
        "  spectrum: guard band {:.0} GHz, isolation {:.1} dB; cascade depth {} at min amplitude {:.2e}",
        report.min_guard_band / 1e9,
        report.isolation_db,
        report.maj_chain_depth,
        report.cascade_min_amplitude,
    );
}

fn random_sets(count: usize, inputs: usize, salt: u64) -> Vec<Vec<Word>> {
    (0..count as u64)
        .map(|i| {
            (0..inputs as u64)
                .map(|j| {
                    Word::from_u8(
                        (i.wrapping_add(salt)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .rotate_left((j as u32) * 11)
                            >> 17) as u8,
                    )
                })
                .collect()
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let guide = Waveguide::paper_default()?;
    let config = CompilerConfig::default();

    // Compile both netlists. The adder is deep and narrow (the carry
    // ripples); the logic unit is shallow and wide — together they give
    // the scheduler two independent request streams of opposite shape.
    let adder = RippleCarryAdder::new(BITS, WIDTH)?;
    let compiled_adder: CompiledCircuit = compile(adder.circuit(), &guide, &config)?;
    let logic = logic_unit()?;
    let compiled_logic = compile(&logic, &guide, &config)?;
    print_report("adder", compiled_adder.report());
    print_report("logic", compiled_logic.report());

    // Placement density: the whole point of FDM placement is needing
    // fewer waveguides than the naive one-gate-per-waveguide layout.
    for (name, compiled) in [("adder", &compiled_adder), ("logic", &compiled_logic)] {
        let report = compiled.report();
        assert!(
            report.waveguides_used < (report.gate_counts.maj3 + report.gate_counts.xor2),
            "{name}: placement must beat one waveguide per gate: {report:?}"
        );
    }

    // One scheduler serves both plans: the adder's slots start at
    // waveguide 0, the logic unit's directly above them.
    let mut builder = SchedulerBuilder::new(ServeConfig {
        keep_readouts: false,
        workers: 2,
        max_batch: 256,
        linger: Duration::from_micros(100),
        queue_depth: 1024,
        lut_dir: None,
        adaptive: AdaptiveConfig::default(),
    });
    let adder_gates = register_compiled(
        &mut builder,
        &compiled_adder,
        guide,
        WaveguideId(0),
        BackendChoice::Cached,
    )?;
    let logic_first = WaveguideId(compiled_adder.report().waveguides_used as u64);
    let logic_gates = register_compiled(
        &mut builder,
        &compiled_logic,
        guide,
        logic_first,
        BackendChoice::Cached,
    )?;
    let scheduler = builder.build()?;

    // Two plans, two client threads, pipelined execution on both.
    let adder_sets = random_sets(24, adder.circuit().input_count(), 3);
    let logic_sets = random_sets(24, logic.input_count(), 7);
    let start = Instant::now();
    let (adder_run, logic_run) = std::thread::scope(|scope| {
        let adder_client = scope.spawn(|| {
            let mut exec = CircuitExecutor::new(&scheduler, &compiled_adder, &adder_gates)?;
            let out = exec.run_batch(&adder_sets)?;
            Ok::<_, Box<dyn std::error::Error + Send + Sync>>((out, exec.peak_in_flight()))
        });
        let logic_client = scope.spawn(|| {
            let mut exec = CircuitExecutor::new(&scheduler, &compiled_logic, &logic_gates)?;
            let out = exec.run_batch(&logic_sets)?;
            Ok::<_, Box<dyn std::error::Error + Send + Sync>>((out, exec.peak_in_flight()))
        });
        (
            adder_client.join().expect("adder thread"),
            logic_client.join().expect("logic thread"),
        )
    });
    let (adder_out, adder_peak) = adder_run.expect("adder plan");
    let (logic_out, logic_peak) = logic_run.expect("logic plan");
    let elapsed = start.elapsed();

    // Both plans computed exactly what the sequential interpreter does.
    assert_eq!(adder_out, adder.circuit().evaluate_batch(&adder_sets)?);
    assert_eq!(logic_out, logic.evaluate_batch(&logic_sets)?);

    let stats = scheduler.stats();
    println!(
        "\nserved both plans in {elapsed:?}: {} requests, {} drains (mean {:.1} req/drain), \
         peak in flight adder {adder_peak} / logic {logic_peak}",
        stats.completed,
        stats.drain_passes,
        stats.mean_drain(),
    );
    assert_eq!(stats.failed, 0);
    assert!(
        adder_peak >= 2 && logic_peak >= 2,
        "pipelined submission must keep multiple requests in flight"
    );
    scheduler.shutdown()?;
    println!("OK: two compiled circuits served pipelined over shared shards");
    Ok(())
}
