//! XOR reduction trees (parity generators).

use crate::netlist::{Circuit, NodeId};
use magnon_core::GateError;

/// Builds a balanced XOR tree over `leaves` inside `circuit` and
/// returns the root node.
///
/// # Errors
///
/// Returns [`GateError::InvalidParameter`] for an empty leaf list, and
/// propagates netlist errors.
pub fn xor_tree(circuit: &mut Circuit, leaves: &[NodeId]) -> Result<NodeId, GateError> {
    if leaves.is_empty() {
        return Err(GateError::InvalidParameter {
            parameter: "leaves",
            value: 0.0,
        });
    }
    let mut layer: Vec<NodeId> = leaves.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(circuit.xor2(pair[0], pair[1])?);
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    Ok(layer[0])
}

/// A `k`-input parity generator over `n`-channel words.
///
/// # Examples
///
/// ```
/// use magnon_circuits::parity::ParityTree;
/// use magnon_core::word::Word;
///
/// # fn main() -> Result<(), magnon_core::GateError> {
/// let parity = ParityTree::new(4, 8)?;
/// let out = parity.evaluate(&[
///     Word::from_u8(0b1111_0000),
///     Word::from_u8(0b1100_1100),
///     Word::from_u8(0b1010_1010),
///     Word::from_u8(0b0000_0000),
/// ])?;
/// assert_eq!(out.to_u8(), 0b1001_0110);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ParityTree {
    circuit: Circuit,
    leaf_count: usize,
}

impl ParityTree {
    /// Builds a parity tree with `leaf_count` inputs over
    /// `word_width`-channel words.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for zero leaves.
    pub fn new(leaf_count: usize, word_width: usize) -> Result<Self, GateError> {
        if leaf_count == 0 {
            return Err(GateError::InvalidParameter {
                parameter: "leaf_count",
                value: 0.0,
            });
        }
        let mut circuit = Circuit::new(word_width)?;
        let leaves: Vec<NodeId> = (0..leaf_count).map(|_| circuit.input()).collect();
        let root = xor_tree(&mut circuit, &leaves)?;
        circuit.mark_output(root)?;
        Ok(ParityTree {
            circuit,
            leaf_count,
        })
    }

    /// Number of inputs.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Computes the channel-wise parity of the input words.
    ///
    /// # Errors
    ///
    /// Propagates operand validation from the netlist.
    pub fn evaluate(
        &self,
        inputs: &[magnon_core::word::Word],
    ) -> Result<magnon_core::word::Word, GateError> {
        Ok(self.circuit.evaluate(inputs)?[0])
    }

    /// [`ParityTree::evaluate`] with every XOR evaluated on a physical
    /// spin-wave backend from `bank`.
    ///
    /// # Errors
    ///
    /// Operand validation plus gate/backend errors from the bank.
    pub fn evaluate_with(
        &self,
        bank: &mut crate::netlist::GateBank,
        inputs: &[magnon_core::word::Word],
    ) -> Result<magnon_core::word::Word, GateError> {
        self.evaluate_on(bank, inputs)
    }

    /// [`ParityTree::evaluate`] with every XOR routed through any
    /// [`crate::netlist::GateDispatcher`] — an inline bank or a serving
    /// scheduler.
    ///
    /// # Errors
    ///
    /// Operand validation plus gate/backend errors from the dispatcher.
    pub fn evaluate_on(
        &self,
        dispatcher: &mut dyn crate::netlist::GateDispatcher,
        inputs: &[magnon_core::word::Word],
    ) -> Result<magnon_core::word::Word, GateError> {
        Ok(self.circuit.evaluate_on(dispatcher, inputs)?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_core::word::Word;

    #[test]
    fn parity_of_one_is_identity() {
        let p = ParityTree::new(1, 8).unwrap();
        let w = Word::from_u8(0xA5);
        assert_eq!(p.evaluate(&[w]).unwrap(), w);
        assert_eq!(p.circuit().gate_counts().xor2, 0);
    }

    #[test]
    fn parity_matches_xor_fold() {
        let p = ParityTree::new(5, 8).unwrap();
        let ws = [0x11u8, 0x22, 0x44, 0x88, 0xFF];
        let words: Vec<Word> = ws.iter().map(|&b| Word::from_u8(b)).collect();
        let expected = ws.iter().fold(0u8, |acc, &b| acc ^ b);
        assert_eq!(p.evaluate(&words).unwrap().to_u8(), expected);
    }

    #[test]
    fn tree_gate_count_is_k_minus_one() {
        for k in [2, 3, 4, 7, 8, 16] {
            let p = ParityTree::new(k, 4).unwrap();
            assert_eq!(p.circuit().gate_counts().xor2, k - 1, "k = {k}");
        }
    }

    #[test]
    fn physical_parity_matches_boolean_parity() {
        use magnon_core::backend::BackendChoice;
        use magnon_physics::waveguide::Waveguide;
        let p = ParityTree::new(4, 8).unwrap();
        let mut bank = crate::netlist::GateBank::new(
            Waveguide::paper_default().unwrap(),
            8,
            BackendChoice::Analytic,
        );
        let ws = [0xF0u8, 0xCC, 0xAA, 0x01];
        let words: Vec<Word> = ws.iter().map(|&b| Word::from_u8(b)).collect();
        let physical = p.evaluate_with(&mut bank, &words).unwrap();
        assert_eq!(physical, p.evaluate(&words).unwrap());
        assert_eq!(physical.to_u8(), ws.iter().fold(0u8, |acc, &b| acc ^ b));
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        // A balanced 8-leaf tree evaluates identically to a fold.
        let p = ParityTree::new(8, 8).unwrap();
        let words: Vec<Word> = (0..8).map(|i| Word::from_u8(1 << i)).collect();
        assert_eq!(p.evaluate(&words).unwrap().to_u8(), 0xFF);
    }

    #[test]
    fn validation() {
        assert!(ParityTree::new(0, 8).is_err());
        let p = ParityTree::new(3, 8).unwrap();
        assert!(p.evaluate(&[Word::from_u8(0)]).is_err());
    }
}
