//! Circuit-scale data parallelism: one 8-bit ripple-carry adder built
//! from data-parallel MAJ/XOR gates adds eight pairs of numbers at
//! once, with the circuit-level area advantage over scalar replication.
//!
//! Run with: `cargo run --release --example parallel_adder`

use spinwave_parallel::circuits::adder::RippleCarryAdder;
use spinwave_parallel::circuits::cost::estimate_circuit;
use spinwave_parallel::cost::Transducer;
use spinwave_parallel::physics::waveguide::Waveguide;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8-bit adder over 8-channel words: eight additions per evaluation.
    let adder = RippleCarryAdder::new(8, 8)?;
    let counts = adder.circuit().gate_counts();
    println!(
        "8-bit ripple-carry adder: {} MAJ-3 + {} XOR-2 gates ({} transducers)",
        counts.maj3,
        counts.xor2,
        counts.transducers()
    );

    let a = [17u64, 200, 255, 0, 128, 99, 64, 3];
    let b = [25u64, 55, 255, 0, 127, 1, 191, 4];
    let sums = adder.add_many(&a, &b)?;
    println!("\n   a    +    b   =  sum");
    for i in 0..8 {
        println!("{:>5} + {:>5} = {:>5}", a[i], b[i], sums[i]);
        assert_eq!(sums[i], a[i] + b[i]);
    }

    // Circuit-level cost: every gate instantiated once regardless of
    // the word width, vs one copy per data set conventionally.
    let cmp = estimate_circuit(
        adder.circuit(),
        &Waveguide::paper_default()?,
        Transducer::paper_default(),
    )?;
    println!(
        "\narea: parallel {:.4} um^2 vs scalar-replicated {:.4} um^2  ({:.2}x reduction)",
        cmp.parallel.area * 1e12,
        cmp.scalar.area * 1e12,
        cmp.area_ratio()
    );
    println!(
        "energy parity: {:.1} aJ in both styles",
        cmp.parallel.energy * 1e18
    );
    Ok(())
}
