//! WIDTH bench: the waveguide-width study of §V — Aharoni demagnetizing
//! factors, FMR and dispersion inversion across widths.

use criterion::{criterion_group, criterion_main, Criterion};
use magnon_math::constants::{GHZ, NM};
use magnon_physics::dispersion::DispersionRelation;
use magnon_physics::waveguide::Waveguide;
use std::hint::black_box;

fn bench_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("width");
    group.sample_size(30);

    let base = Waveguide::paper_default().expect("waveguide");
    let widths: Vec<f64> = (1..=10).map(|i| i as f64 * 50.0 * NM).collect();

    group.bench_function("fmr_sweep_10_widths", |b| {
        b.iter(|| {
            for &w in &widths {
                let guide = base.with_width(w).expect("waveguide");
                black_box(guide.fmr_frequency().expect("fmr"));
            }
        })
    });

    group.bench_function("wavelength_table_per_width", |b| {
        b.iter(|| {
            for &w in &widths {
                let disp = base
                    .with_width(w)
                    .expect("waveguide")
                    .exchange_dispersion()
                    .expect("dispersion");
                for i in 1..=8 {
                    black_box(disp.wavelength(i as f64 * 10.0 * GHZ).expect("wavelength"));
                }
            }
        })
    });

    group.bench_function("kalinikos_slavin_inversion", |b| {
        let disp = base.kalinikos_slavin_dispersion().expect("dispersion");
        b.iter(|| {
            for i in 1..=8 {
                black_box(disp.wavelength(i as f64 * 10.0 * GHZ).expect("wavelength"));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_width);
criterion_main!(benches);
