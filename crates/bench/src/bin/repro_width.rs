//! WIDTH — reproduces the paper's §V "Waveguide Width Variation" study:
//! widths up to 500 nm keep the gate functional with no crosstalk, and
//! the ferromagnetic resonance frequency decreases as the width grows.
//!
//! Per width: demagnetizing factor, FMR, first-channel wavelength, the
//! analytic truth-table verdict, and (full mode) a micromagnetic
//! isolation measurement on a reduced 2-channel gate. Writes
//! `results/width_sweep.csv`.
//!
//! Usage: `cargo run --release -p magnon-bench --bin repro_width`
//! (set `REPRO_FAST=1` to skip the micromagnetic isolation runs).

use magnon_bench::{fast_mode, fmt_sci, results_dir, write_csv};
use magnon_core::crosstalk::CrosstalkReport;
use magnon_core::gate::ParallelGateBuilder;
use magnon_core::micromag_bridge::{MicromagValidator, ValidationSettings};
use magnon_core::truth::LogicFunction;
use magnon_core::word::Word;
use magnon_math::constants::{GHZ, NM};
use magnon_math::window::Window;
use magnon_physics::dispersion::DispersionRelation;
use magnon_physics::waveguide::Waveguide;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let base = Waveguide::paper_default()?;
    let widths_nm = [
        50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0, 500.0,
    ];
    let micromag_widths = [50.0, 250.0, 500.0];

    println!(
        "WIDTH: waveguide width scaling, 50..500 nm (paper: gate keeps working, FMR decreases)"
    );
    println!(
        "\n{:>9} {:>8} {:>10} {:>12} {:>12} {:>14}",
        "width(nm)", "N_z", "FMR(GHz)", "lambda1(nm)", "truth table", "isolation(dB)"
    );

    let mut rows = Vec::new();
    let mut last_fmr = f64::INFINITY;
    let mut fmr_monotone = true;
    let mut all_pass = true;

    for &w in &widths_nm {
        let guide = base.with_width(w * NM)?;
        let nz = guide.demag_factor()?;
        let fmr = guide.fmr_frequency()?;
        fmr_monotone &= fmr < last_fmr;
        last_fmr = fmr;
        let disp = guide.exchange_dispersion()?;
        let lambda1 = disp.wavelength(10.0 * GHZ)?;

        // Analytic functionality check: byte-wide majority on this width.
        let gate = ParallelGateBuilder::new(guide)
            .channels(8)
            .inputs(3)
            .function(LogicFunction::Majority)
            .build()?;
        let verdict = gate.verify_truth_table()?;
        all_pass &= verdict.all_passed();

        // Micromagnetic isolation at selected widths (full mode only).
        let isolation = if !fast_mode() && micromag_widths.contains(&w) {
            Some(measure_isolation(&guide)?)
        } else {
            None
        };

        println!(
            "{:>9.0} {:>8.4} {:>10.3} {:>12.1} {:>12} {:>14}",
            w,
            nz,
            fmr / 1e9,
            lambda1 * 1e9,
            if verdict.all_passed() { "PASS" } else { "FAIL" },
            isolation
                .map(|db| format!("{db:.1}"))
                .unwrap_or_else(|| "-".into()),
        );
        rows.push(vec![
            format!("{w:.0}"),
            fmt_sci(nz),
            fmt_sci(fmr),
            fmt_sci(lambda1),
            verdict.all_passed().to_string(),
            isolation.map(fmt_sci).unwrap_or_default(),
        ]);
    }

    let dir = results_dir();
    write_csv(
        &dir.join("width_sweep.csv"),
        &[
            "width_nm",
            "nz",
            "fmr_hz",
            "lambda1_m",
            "truth_table_pass",
            "isolation_db",
        ],
        &rows,
    )?;
    println!("\nwrote {}/width_sweep.csv", dir.display());
    println!(
        "WIDTH {}",
        if fmr_monotone && all_pass {
            "PASS: FMR decreases monotonically with width; gate functional at every width"
        } else {
            "FAIL"
        }
    );
    if !(fmr_monotone && all_pass) {
        std::process::exit(1);
    }
    Ok(())
}

/// Runs a reduced 2-channel majority gate micromagnetically and reports
/// inter-channel isolation at the output detector.
fn measure_isolation(guide: &Waveguide) -> Result<f64, Box<dyn Error>> {
    let gate = ParallelGateBuilder::new(*guide)
        .channels(2)
        .inputs(3)
        .function(LogicFunction::Majority)
        .build()?;
    let settings = ValidationSettings {
        duration: Some(2.5e-9),
        ..ValidationSettings::default()
    };
    let mut validator = MicromagValidator::with_settings(&gate, settings);
    let zeros = Word::zeros(2)?;
    let ones = Word::ones(2)?;
    let reading = validator.evaluate(&[zeros, ones, zeros])?;
    let trace = reading.series.last().expect("detector trace");
    let steady = trace.after(trace.duration() * 0.5)?;
    let spectrum = steady.spectrum(Window::Hann)?;
    let report = CrosstalkReport::analyze(&spectrum, &gate.channel_plan().frequencies(), 2.0e9)?;
    Ok(report.isolation_db)
}
