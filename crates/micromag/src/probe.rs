//! Magnetization probes and time-series recording.
//!
//! A [`Probe`] observes one magnetization component averaged over a
//! point or region of the mesh; the solver samples all probes at a fixed
//! interval and returns [`magnon_math::spectrum::TimeSeries`] traces —
//! directly analysable with the workspace's FFT/Goertzel tooling, like
//! the paper's `Mx/Ms` detector curves.

use crate::error::SimError;
use crate::mesh::Mesh;
use magnon_math::spectrum::TimeSeries;
use magnon_math::Vec3;

/// Which magnetization component a probe records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Component {
    /// In-plane component along the guide — the paper's readout signal.
    #[default]
    Mx,
    /// Transverse in-plane component.
    My,
    /// Out-of-plane component.
    Mz,
}

impl Component {
    fn extract(self, m: Vec3) -> f64 {
        match self {
            Component::Mx => m.x,
            Component::My => m.y,
            Component::Mz => m.z,
        }
    }
}

/// A detector recording one magnetization component at a point or
/// averaged over a region along the guide.
///
/// # Examples
///
/// ```
/// use magnon_micromag::probe::{Component, Probe};
/// use magnon_math::constants::NM;
///
/// let point = Probe::point(500.0 * NM);
/// let region = Probe::region(480.0 * NM, 40.0 * NM).component(Component::My);
/// assert_eq!(point.x_start(), 500.0 * NM);
/// assert_eq!(region.extent(), 40.0 * NM);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    x_start: f64,
    extent: f64,
    component: Component,
}

impl Probe {
    /// A probe at a single mesh column containing `x`.
    pub fn point(x: f64) -> Self {
        Probe {
            x_start: x,
            extent: 0.0,
            component: Component::Mx,
        }
    }

    /// A probe averaging over `[x_start, x_start + extent)`.
    pub fn region(x_start: f64, extent: f64) -> Self {
        Probe {
            x_start,
            extent,
            component: Component::Mx,
        }
    }

    /// Selects the recorded component (default [`Component::Mx`]).
    pub fn component(mut self, component: Component) -> Self {
        self.component = component;
        self
    }

    /// Start coordinate in metres.
    pub fn x_start(&self) -> f64 {
        self.x_start
    }

    /// Extent in metres (0 for a point probe).
    pub fn extent(&self) -> f64 {
        self.extent
    }

    /// Samples the probe: the selected component averaged over the
    /// probed cells (all rows of a 2D mesh).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RegionOutOfBounds`] when the probe lies
    /// outside the mesh.
    pub fn sample(&self, mesh: &Mesh, m: &[Vec3]) -> Result<f64, SimError> {
        let cols = mesh.columns_in(self.x_start, self.extent)?;
        let nx = mesh.nx();
        let mut acc = 0.0;
        let mut count = 0usize;
        for j in 0..mesh.ny() {
            let row = j * nx;
            for i in cols.clone() {
                acc += self.component.extract(m[row + i]);
                count += 1;
            }
        }
        Ok(acc / count as f64)
    }
}

/// Accumulates probe samples into time series during a run.
#[derive(Debug, Clone)]
pub struct Recorder {
    probes: Vec<Probe>,
    interval: usize,
    dt: f64,
    buffers: Vec<Vec<f64>>,
    step: usize,
}

impl Recorder {
    /// Creates a recorder sampling each of `probes` every `interval`
    /// solver steps of size `dt`.
    ///
    /// # Errors
    ///
    /// * [`SimError::NothingToDo`] with no probes.
    /// * [`SimError::InvalidParameter`] for a zero interval or
    ///   non-positive `dt`.
    pub fn new(probes: Vec<Probe>, interval: usize, dt: f64) -> Result<Self, SimError> {
        if probes.is_empty() {
            return Err(SimError::NothingToDo);
        }
        if interval == 0 {
            return Err(SimError::InvalidParameter {
                parameter: "interval",
                value: 0.0,
            });
        }
        if !(dt.is_finite() && dt > 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "dt",
                value: dt,
            });
        }
        let buffers = vec![Vec::new(); probes.len()];
        Ok(Recorder {
            probes,
            interval,
            dt,
            buffers,
            step: 0,
        })
    }

    /// Number of probes.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    /// Called by the solver after each step; samples when due.
    ///
    /// # Errors
    ///
    /// Propagates probe sampling errors.
    pub fn observe(&mut self, mesh: &Mesh, m: &[Vec3]) -> Result<(), SimError> {
        if self.step.is_multiple_of(self.interval) {
            for (probe, buf) in self.probes.iter().zip(&mut self.buffers) {
                buf.push(probe.sample(mesh, m)?);
            }
        }
        self.step += 1;
        Ok(())
    }

    /// Finalises the recording into one [`TimeSeries`] per probe.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NothingToDo`] when no samples were taken.
    pub fn into_series(self) -> Result<Vec<TimeSeries>, SimError> {
        if self.buffers.iter().any(|b| b.is_empty()) {
            return Err(SimError::NothingToDo);
        }
        let sample_dt = self.dt * self.interval as f64;
        self.buffers
            .into_iter()
            .map(|b| TimeSeries::new(sample_dt, b).map_err(SimError::from))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_math::constants::NM;

    fn mesh() -> Mesh {
        Mesh::line(200.0 * NM, 2.0 * NM, 50.0 * NM, 1.0 * NM).unwrap()
    }

    #[test]
    fn point_probe_reads_single_cell() {
        let mesh = mesh();
        let mut m = vec![Vec3::Z; mesh.cell_count()];
        m[50] = Vec3::new(0.25, 0.0, 0.97);
        let p = Probe::point(101.0 * NM); // cell 50 spans 100..102 nm
        assert!((p.sample(&mesh, &m).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn region_probe_averages() {
        let mesh = mesh();
        let mut m = vec![Vec3::Z; mesh.cell_count()];
        m[50] = Vec3::new(0.2, 0.0, 0.98);
        m[51] = Vec3::new(0.4, 0.0, 0.92);
        let p = Probe::region(100.0 * NM, 4.0 * NM);
        assert!((p.sample(&mesh, &m).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn component_selection() {
        let mesh = mesh();
        let mut m = vec![Vec3::Z; mesh.cell_count()];
        m[10] = Vec3::new(0.1, 0.2, 0.97);
        let x = 21.0 * NM;
        assert!((Probe::point(x).sample(&mesh, &m).unwrap() - 0.1).abs() < 1e-12);
        assert!(
            (Probe::point(x)
                .component(Component::My)
                .sample(&mesh, &m)
                .unwrap()
                - 0.2)
                .abs()
                < 1e-12
        );
        assert!(
            (Probe::point(x)
                .component(Component::Mz)
                .sample(&mesh, &m)
                .unwrap()
                - 0.97)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn out_of_bounds_probe_rejected() {
        let mesh = mesh();
        let m = vec![Vec3::Z; mesh.cell_count()];
        assert!(Probe::point(500.0 * NM).sample(&mesh, &m).is_err());
    }

    #[test]
    fn recorder_validation() {
        assert!(matches!(
            Recorder::new(vec![], 1, 1e-13),
            Err(SimError::NothingToDo)
        ));
        assert!(Recorder::new(vec![Probe::point(0.0)], 0, 1e-13).is_err());
        assert!(Recorder::new(vec![Probe::point(0.0)], 1, 0.0).is_err());
    }

    #[test]
    fn recorder_samples_at_interval() {
        let mesh = mesh();
        let m = vec![Vec3::Z; mesh.cell_count()];
        let mut rec = Recorder::new(vec![Probe::point(100.0 * NM)], 10, 1e-13).unwrap();
        for _ in 0..100 {
            rec.observe(&mesh, &m).unwrap();
        }
        let series = rec.into_series().unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].len(), 10);
        assert!((series[0].dt() - 1e-12).abs() < 1e-24);
    }

    #[test]
    fn empty_recorder_cannot_finalize() {
        let rec = Recorder::new(vec![Probe::point(0.0)], 1, 1e-13).unwrap();
        assert!(matches!(rec.into_series(), Err(SimError::NothingToDo)));
    }

    #[test]
    fn recorder_tracks_changing_state() {
        let mesh = mesh();
        let mut m = vec![Vec3::Z; mesh.cell_count()];
        let mut rec = Recorder::new(vec![Probe::point(100.0 * NM)], 1, 1e-13).unwrap();
        for s in 0..5 {
            m[50].x = s as f64 * 0.1;
            rec.observe(&mesh, &m).unwrap();
        }
        let series = rec.into_series().unwrap();
        let v = series[0].samples();
        assert!((v[0] - 0.0).abs() < 1e-12);
        assert!((v[4] - 0.4).abs() < 1e-12);
    }
}
