//! The emitted plan: everything an executor needs to run a circuit
//! through a serving scheduler.

use crate::levelize::Levelized;
use crate::place::{Placement, SlotSpec};
use crate::validate::ValidationReport;
use magnon_circuits::netlist::{Circuit, GateCounts, NodeId};

/// Compile-time facts about a plan, aggregated across the passes.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileReport {
    /// Word width every wire carries.
    pub width: usize,
    /// Gate population of the circuit.
    pub gate_counts: GateCounts,
    /// Number of ASAP wavefronts (gate depth).
    pub depth: usize,
    /// Widest wavefront — the concurrency the slot table was sized for.
    pub max_level_width: usize,
    /// Slots in the plan's `(waveguide, lane)` table.
    pub slot_count: usize,
    /// Distinct waveguides the plan claims (FDM stacking makes this
    /// smaller than `slot_count` whenever isolation allows).
    pub waveguides_used: usize,
    /// Lanes stacked per waveguide.
    pub lanes_per_waveguide: u16,
    /// Smallest spectral gap (Hz) between co-resident lanes; infinite
    /// without lane sharing.
    pub min_guard_band: f64,
    /// Worst inter-lane isolation (dB); infinite without lane sharing.
    pub isolation_db: f64,
    /// Longest consecutive-majority run the validator probed.
    pub maj_chain_depth: usize,
    /// Worst-case cascade amplitude at that depth (`1.0` when no probe
    /// ran).
    pub cascade_min_amplitude: f64,
}

/// An executable plan: the circuit, its wavefronts, and the slot table
/// its gate nodes were placed onto.
///
/// Produced by [`crate::compile`]; executed by the `magnon-serve`
/// crate's pipelined executor, which registers one MAJ-3/XOR-2 gate
/// pair per [`SlotSpec`] and submits each node's request the moment
/// its operands complete.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    circuit: Circuit,
    levelized: Levelized,
    placement: Placement,
    report: CompileReport,
}

impl CompiledCircuit {
    /// Assembles the plan from the passes' outputs (the **emit** step).
    pub(crate) fn emit(
        circuit: Circuit,
        validation: ValidationReport,
        levelized: Levelized,
        placement: Placement,
    ) -> Self {
        let report = CompileReport {
            width: validation.width,
            gate_counts: validation.gate_counts,
            depth: levelized.depth(),
            max_level_width: levelized.max_level_width(),
            slot_count: placement.slots().len(),
            waveguides_used: placement.waveguides_used(),
            lanes_per_waveguide: placement.lanes_per_waveguide(),
            min_guard_band: placement.min_guard_band(),
            isolation_db: placement.isolation_db(),
            maj_chain_depth: validation.maj_chain_depth,
            cascade_min_amplitude: validation.cascade_min_amplitude,
        };
        CompiledCircuit {
            circuit,
            levelized,
            placement,
            report,
        }
    }

    /// The compiled netlist.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Gate nodes per ASAP wavefront, earliest first.
    pub fn levels(&self) -> &[Vec<NodeId>] {
        self.levelized.levels()
    }

    /// The wavefront index of gate node `id`.
    pub fn level_of(&self, id: NodeId) -> Option<usize> {
        self.levelized.level_of(id)
    }

    /// The `(waveguide, lane)` slot table.
    pub fn slots(&self) -> &[SlotSpec] {
        self.placement.slots()
    }

    /// The slot gate node `id` executes on (`None` for free nodes).
    pub fn slot_of(&self, id: NodeId) -> Option<usize> {
        self.placement.slot_of(id)
    }

    /// Compile-time facts about the plan.
    pub fn report(&self) -> &CompileReport {
        &self.report
    }
}
