//! Failure injection on the byte-wide majority gate: how much
//! transducer phase jitter and amplitude error does the
//! interference-based vote tolerate?
//!
//! Run with: `cargo run --release --example noise_robustness`

use spinwave_parallel::core::prelude::*;
use spinwave_parallel::core::robustness::{monte_carlo_error_rate, phase_noise_sweep, NoiseModel};
use spinwave_parallel::physics::waveguide::Waveguide;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
        .channels(8)
        .inputs(3)
        .function(LogicFunction::Majority)
        .build()?;

    println!("phase-noise margin of the byte-wide MAJ-3 gate (500 Monte-Carlo trials each):\n");
    println!("{:>12} {:>14}", "sigma (rad)", "bit error rate");
    let sigmas = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0];
    for report in phase_noise_sweep(&gate, &sigmas, 500, 12345)? {
        println!(
            "{:>12.2} {:>14.5}",
            report.noise.phase_sigma,
            report.error_rate()
        );
    }

    println!("\namplitude-only noise (phase exact):");
    for sigma in [0.05, 0.1, 0.2, 0.4] {
        let report = monte_carlo_error_rate(&gate, NoiseModel::new(0.0, sigma)?, 500, 678)?;
        println!(
            "  {:>4.0}% amplitude jitter -> error rate {:.5}",
            sigma * 100.0,
            report.error_rate()
        );
    }

    println!("\nconclusion: the majority vote decodes on phase, so it shrugs off");
    println!("substantial amplitude error, and the π-separated phase encoding");
    println!("leaves roughly ±π/2 of phase margin per source.");
    Ok(())
}
