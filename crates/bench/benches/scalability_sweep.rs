//! SCALE bench: the scalability sweep of §V — channel allocation,
//! layout solving and equalising-schedule computation across channel
//! counts.

use criterion::{criterion_group, criterion_main, Criterion};
use magnon_core::scalability::scalability_sweep;
use magnon_physics::waveguide::Waveguide;
use std::hint::black_box;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(20);

    let guide = Waveguide::paper_default().expect("waveguide");
    for counts in [
        vec![2usize, 4],
        vec![2usize, 4, 8],
        vec![2usize, 4, 8, 12, 16],
    ] {
        let label = format!("sweep_to_{}", counts.last().expect("non-empty"));
        group.bench_function(label, |b| {
            b.iter(|| {
                scalability_sweep(black_box(&guide), 3, &counts, 10.0e9, 5.0e9).expect("sweep")
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
