//! The scalar-vs-parallel-vs-serialized comparison (paper §V.B and the
//! serialization trade-off of §III).

use crate::report::CostReport;
use crate::transducer::Transducer;
use magnon_core::gate::{ParallelGate, ParallelGateBuilder};
use magnon_core::GateError;
use std::fmt;

/// Computes implementation costs for a given transducer technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    transducer: Transducer,
}

impl CostModel {
    /// Creates a model around one transducer technology.
    pub fn new(transducer: Transducer) -> Self {
        CostModel { transducer }
    }

    /// The transducer model in use.
    pub fn transducer(&self) -> &Transducer {
        &self.transducer
    }

    /// Longest source→detector flight time across channels, at each
    /// channel's group velocity.
    fn propagation_delay(&self, gate: &ParallelGate) -> Result<f64, GateError> {
        let mut worst: f64 = 0.0;
        for (c, ch) in gate.channel_plan().channels().iter().enumerate() {
            let det = gate.layout().detector_position(c)?;
            let first = gate.layout().source_position(c, 0)?;
            worst = worst.max((det - first) / ch.group_velocity);
        }
        Ok(worst)
    }

    /// Cost of the data-parallel gate itself: one waveguide carrying
    /// `m·n` sources and `n` detectors.
    ///
    /// # Errors
    ///
    /// Propagates layout lookups (cannot fail for a built gate).
    pub fn parallel_report(&self, gate: &ParallelGate) -> Result<CostReport, GateError> {
        let n = gate.word_width();
        let m = gate.input_count();
        let length = gate.layout().span();
        let transducers = n * (m + 1);
        Ok(CostReport {
            label: "parallel",
            area: length * gate.waveguide().width(),
            delay: 2.0 * self.transducer.delay() + self.propagation_delay(gate)?,
            energy: transducers as f64 * self.transducer.energy(),
            transducers,
            waveguide_length: length,
        })
    }

    /// Builds the single-data-set scalar gate equivalent: same material,
    /// same function and input count, one channel at the gate's first
    /// frequency.
    fn scalar_gate(&self, gate: &ParallelGate) -> Result<ParallelGate, GateError> {
        ParallelGateBuilder::new(*gate.waveguide())
            .channels(1)
            .inputs(gate.input_count())
            .function(gate.function())
            .base_frequency(gate.channel_plan().frequencies()[0])
            .frequency_step(gate.channel_plan().frequencies()[0])
            .layout_spec(*gate.layout().spec())
            .build()
    }

    /// Cost of the conventional approach: `n` scalar gates, one per data
    /// set (the paper's 8 replicated majority gates).
    ///
    /// # Errors
    ///
    /// Propagates scalar-gate construction errors.
    pub fn scalar_report(&self, gate: &ParallelGate) -> Result<CostReport, GateError> {
        let n = gate.word_width();
        let m = gate.input_count();
        let scalar = self.scalar_gate(gate)?;
        let length = scalar.layout().span();
        let transducers = n * (m + 1);
        Ok(CostReport {
            label: "scalar x n",
            area: n as f64 * length * gate.waveguide().width(),
            delay: 2.0 * self.transducer.delay() + self.propagation_delay(&scalar)?,
            energy: transducers as f64 * self.transducer.energy(),
            transducers,
            waveguide_length: n as f64 * length,
        })
    }

    /// Cost of serialization: one scalar gate reused over `n` time
    /// slots (the alternative the paper's §III mentions).
    ///
    /// # Errors
    ///
    /// Propagates scalar-gate construction errors.
    pub fn serialized_report(&self, gate: &ParallelGate) -> Result<CostReport, GateError> {
        let n = gate.word_width();
        let m = gate.input_count();
        let scalar = self.scalar_gate(gate)?;
        let length = scalar.layout().span();
        let per_slot = 2.0 * self.transducer.delay() + self.propagation_delay(&scalar)?;
        Ok(CostReport {
            label: "serialized",
            area: length * gate.waveguide().width(),
            delay: n as f64 * per_slot,
            // Same total transducer events as the other styles.
            energy: (n * (m + 1)) as f64 * self.transducer.energy(),
            transducers: m + 1,
            waveguide_length: length,
        })
    }

    /// The full three-way comparison.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the scalar equivalents.
    pub fn compare(&self, gate: &ParallelGate) -> Result<Comparison, GateError> {
        Ok(Comparison {
            parallel: self.parallel_report(gate)?,
            scalar: self.scalar_report(gate)?,
            serialized: self.serialized_report(gate)?,
        })
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new(Transducer::paper_default())
    }
}

/// Result of [`CostModel::compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// The data-parallel gate.
    pub parallel: CostReport,
    /// `n` replicated scalar gates.
    pub scalar: CostReport,
    /// One scalar gate over `n` time slots.
    pub serialized: CostReport,
}

impl Comparison {
    /// Area advantage of the parallel gate over replication
    /// (`scalar / parallel`; the paper reports 4.16).
    pub fn area_ratio(&self) -> f64 {
        self.scalar.area / self.parallel.area
    }

    /// Delay ratio `scalar / parallel` (paper: ~1.0).
    pub fn delay_ratio(&self) -> f64 {
        self.scalar.delay / self.parallel.delay
    }

    /// Energy ratio `scalar / parallel` (paper: 1.0).
    pub fn energy_ratio(&self) -> f64 {
        self.scalar.energy / self.parallel.energy
    }

    /// Delay advantage of the parallel gate over serialization
    /// (`serialized / parallel`; ≈ n).
    pub fn serialization_delay_ratio(&self) -> f64 {
        self.serialized.delay / self.parallel.delay
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.parallel)?;
        writeln!(f, "{}", self.scalar)?;
        writeln!(f, "{}", self.serialized)?;
        writeln!(
            f,
            "parallel vs scalar-replicated : {:.2}x area, {:.2}x delay, {:.2}x energy",
            self.area_ratio(),
            self.delay_ratio(),
            self.energy_ratio()
        )?;
        write!(
            f,
            "parallel vs serialized        : {:.2}x faster at {:.2}x the area",
            self.serialization_delay_ratio(),
            self.parallel.area / self.serialized.area
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_core::truth::LogicFunction;
    use magnon_physics::waveguide::Waveguide;

    fn byte_gate() -> ParallelGate {
        ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(8)
            .inputs(3)
            .function(LogicFunction::Majority)
            .build()
            .unwrap()
    }

    #[test]
    fn transducer_counts_equal_across_styles() {
        // The heart of the paper's "same delay and energy" claim.
        let cmp = CostModel::default().compare(&byte_gate()).unwrap();
        assert_eq!(cmp.parallel.transducers, 32);
        assert_eq!(cmp.scalar.transducers, 32);
        assert_eq!(cmp.parallel.energy, cmp.scalar.energy);
        assert_eq!(cmp.parallel.energy, cmp.serialized.energy);
    }

    #[test]
    fn area_advantage_in_paper_range() {
        // Paper: 4.16x. Our dispersion differs (see DESIGN.md), so we
        // accept the same order: between 2x and 8x.
        let cmp = CostModel::default().compare(&byte_gate()).unwrap();
        let ratio = cmp.area_ratio();
        assert!(ratio > 2.0 && ratio < 8.0, "area ratio = {ratio}");
        assert!(cmp.parallel.area < cmp.scalar.area);
    }

    #[test]
    fn delay_parity_with_replication() {
        // Transducers dominate: both styles pay 2 transducer delays plus
        // a sub-ns flight; ratio close to 1.
        let cmp = CostModel::default().compare(&byte_gate()).unwrap();
        let r = cmp.delay_ratio();
        assert!(r > 0.7 && r < 1.3, "delay ratio = {r}");
    }

    #[test]
    fn serialization_trades_delay_for_area() {
        let cmp = CostModel::default().compare(&byte_gate()).unwrap();
        assert!(cmp.serialization_delay_ratio() > 6.0);
        assert!(cmp.serialized.area < cmp.parallel.area);
    }

    #[test]
    fn areas_scale_with_word_width() {
        let model = CostModel::default();
        let g4 = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(4)
            .inputs(3)
            .build()
            .unwrap();
        let g8 = byte_gate();
        let a4 = model.parallel_report(&g4).unwrap().area;
        let a8 = model.parallel_report(&g8).unwrap().area;
        assert!(a8 > a4);
        // Replication area grows linearly with n; the parallel gate
        // sub-linearly — the essence of the area win.
        let r4 = model.compare(&g4).unwrap().area_ratio();
        let r8 = model.compare(&g8).unwrap().area_ratio();
        assert!(r8 > r4, "advantage must grow with word width: {r4} vs {r8}");
    }

    #[test]
    fn display_mentions_ratios() {
        let cmp = CostModel::default().compare(&byte_gate()).unwrap();
        let s = cmp.to_string();
        assert!(s.contains("parallel vs scalar-replicated"));
        assert!(s.contains("serialized"));
    }

    #[test]
    fn paper_area_magnitudes() {
        // Absolute sanity: the byte gate occupies a few hundredths of a
        // µm², the replicated version roughly a tenth — the same decade
        // as the paper's 0.0279 / 0.116 µm².
        let cmp = CostModel::default().compare(&byte_gate()).unwrap();
        assert!(cmp.parallel.area_um2() > 0.005 && cmp.parallel.area_um2() < 0.1);
        assert!(cmp.scalar.area_um2() > 0.03 && cmp.scalar.area_um2() < 0.5);
    }
}
