//! Batched serving through evaluation backends: compile the gate once,
//! stream thousands of operand sets through a session, and compare the
//! analytic and cached (truth-table LUT) backends against single-shot
//! calls.
//!
//! Run with: `cargo run --release --example batch_throughput`

use spinwave_parallel::core::prelude::*;
use spinwave_parallel::physics::waveguide::Waveguide;
use std::time::Instant;

const SETS: usize = 4096;

fn operand_sets(gate: &ParallelGate) -> Result<Vec<OperandSet>, GateError> {
    let n = gate.word_width();
    let m = gate.input_count();
    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    (0..SETS as u64)
        .map(|i| {
            let words = (0..m as u64)
                .map(|j| {
                    let bits = 0x9E37_79B9_7F4A_7C15u64
                        .wrapping_mul(i + 1)
                        .rotate_left(j as u32 * 17)
                        & mask;
                    Word::from_bits(bits, n)
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(OperandSet::new(words))
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
        .channels(8)
        .inputs(3)
        .function(LogicFunction::Majority)
        .build()?;
    let sets = operand_sets(&gate)?;
    println!(
        "byte-wide 3-input majority gate, {} operand sets x {} channels\n",
        SETS,
        gate.word_width()
    );

    // Baseline: N public single-shot calls.
    let start = Instant::now();
    let mut single_words = Vec::with_capacity(SETS);
    for set in &sets {
        single_words.push(gate.evaluate(set.words())?.word());
    }
    let t_single = start.elapsed();
    println!("single-shot x{SETS:<6} {t_single:>12.2?}");

    // One batched call per backend; results must be identical.
    for choice in [BackendChoice::Analytic, BackendChoice::Cached] {
        let mut session = gate.session(choice)?;
        // Warm once so the cached backend's LUT misses are not timed.
        session.evaluate_batch(&sets[..1])?;
        let start = Instant::now();
        let outputs = session.evaluate_batch(&sets)?;
        let elapsed = start.elapsed();
        let rate = SETS as f64 * gate.word_width() as f64 / elapsed.as_secs_f64();
        println!(
            "{:<9} batch x{SETS:<5} {elapsed:>12.2?}  ({rate:.3e} gate results/s)",
            session.backend_name()
        );
        for (got, want) in outputs.iter().zip(&single_words) {
            assert_eq!(got.word(), *want, "backends must agree with single-shot");
        }
    }

    println!("\nall backends agree with single-shot evaluation");
    Ok(())
}
