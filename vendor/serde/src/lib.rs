//! Marker-trait shim for `serde` (offline build environment).
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and
//! derive-macro namespaces so existing `#[derive(Serialize, Deserialize)]`
//! code compiles unchanged. No serialization machinery is included —
//! nothing in the workspace serializes yet.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
