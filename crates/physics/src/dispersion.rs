//! Spin-wave dispersion relations for perpendicularly magnetized films.
//!
//! Two branches are provided behind the common trait
//! [`DispersionRelation`]:
//!
//! * [`ExchangeDispersion`] — the local-demag exchange branch
//!   `ω(k) = ω_H + ω_M λ_ex² k²`. This is *exactly* the dispersion
//!   realised by the finite-difference simulator in `magnon-micromag`
//!   (which uses a local demagnetizing tensor), so gate layouts designed
//!   on this branch validate with no systematic wavelength error.
//! * [`KalinikosSlavinFvmsw`] — the forward-volume magnetostatic branch
//!   with the lowest-order Kalinikos–Slavin thickness correction
//!   `ω² = ω_h(ω_h + ω_M F(kd))`, `F = 1 − (1 − e^{−kd})/(kd)`.
//!   This is the model closest to the paper's OOMMF setup and is used
//!   for "paper-mode" wavelength tables.
//!
//! Both are strictly increasing in `k`, so wavenumber inversion is
//! well-posed.

use crate::error::PhysicsError;
use magnon_math::constants::GAMMA_E;
use magnon_math::roots;

/// A spin-wave dispersion relation `f(k)` above a ferromagnetic
/// resonance floor.
///
/// `k` is in rad/m and frequencies are in Hz. Implementations must be
/// strictly increasing in `k ≥ 0`.
pub trait DispersionRelation {
    /// Frequency in Hz of the spin wave with wavenumber `k` (rad/m).
    fn frequency(&self, k: f64) -> f64;

    /// Inverts the dispersion: wavenumber (rad/m) of the wave at
    /// `frequency` (Hz).
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::FrequencyBelowFmr`] when `frequency` does
    /// not exceed the FMR floor.
    fn wavenumber(&self, frequency: f64) -> Result<f64, PhysicsError>;

    /// Ferromagnetic resonance frequency `f(k → 0)` in Hz.
    fn fmr_frequency(&self) -> f64 {
        self.frequency(0.0)
    }

    /// Wavelength `λ = 2π/k` in metres of the wave at `frequency`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DispersionRelation::wavenumber`].
    fn wavelength(&self, frequency: f64) -> Result<f64, PhysicsError> {
        Ok(2.0 * std::f64::consts::PI / self.wavenumber(frequency)?)
    }

    /// Group velocity `v_g = dω/dk` in m/s, by central difference.
    fn group_velocity(&self, k: f64) -> f64 {
        let h = (k.abs() * 1e-6).max(1.0);
        let lo = (k - h).max(0.0);
        let hi = k + h;
        2.0 * std::f64::consts::PI * (self.frequency(hi) - self.frequency(lo)) / (hi - lo)
    }
}

/// Exchange-dominated dispersion with a local demagnetizing tensor:
/// `ω(k) = ω_H + ω_M λ_ex² k²`.
///
/// # Examples
///
/// ```
/// use magnon_physics::dispersion::{DispersionRelation, ExchangeDispersion};
/// use magnon_physics::material::Material;
///
/// # fn main() -> Result<(), magnon_physics::PhysicsError> {
/// let disp = ExchangeDispersion::new(&Material::fe_co_b(), 1.0)?;
/// let k = disp.wavenumber(10.0e9)?;
/// assert!((disp.frequency(k) - 10.0e9).abs() < 1.0); // exact inversion
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeDispersion {
    /// ω_H = γ μ₀ H_i (rad/s).
    omega_h: f64,
    /// ω_M λ_ex² (rad·m²/s): quadratic coefficient.
    exchange_coeff: f64,
}

impl ExchangeDispersion {
    /// Builds the dispersion for `material` with an out-of-plane
    /// demagnetizing factor `nz` (1.0 for an infinite film).
    ///
    /// # Errors
    ///
    /// * [`PhysicsError::InvalidGeometry`] for `nz` outside `[0, 1]`.
    /// * [`PhysicsError::NotPerpendicular`] when
    ///   `H_ani − nz·Ms ≤ 0` (the film is not out-of-plane magnetized).
    pub fn new(material: &crate::material::Material, nz: f64) -> Result<Self, PhysicsError> {
        if !(0.0..=1.0).contains(&nz) || !nz.is_finite() {
            return Err(PhysicsError::InvalidGeometry {
                parameter: "nz",
                value: nz,
            });
        }
        let internal_field = material.anisotropy_field() - nz * material.saturation_magnetization();
        if internal_field <= 0.0 {
            return Err(PhysicsError::NotPerpendicular { internal_field });
        }
        let omega_h = GAMMA_E * magnon_math::constants::MU_0 * internal_field;
        let exchange_coeff = material.omega_m() * material.exchange_length_sq();
        Ok(ExchangeDispersion {
            omega_h,
            exchange_coeff,
        })
    }

    /// Builds the dispersion directly from circular frequencies; used by
    /// tests and by callers that already computed the internal field.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicsError::InvalidGeometry`] for non-positive
    /// coefficients.
    pub fn from_omegas(omega_h: f64, exchange_coeff: f64) -> Result<Self, PhysicsError> {
        if !(omega_h.is_finite() && omega_h > 0.0) {
            return Err(PhysicsError::InvalidGeometry {
                parameter: "omega_h",
                value: omega_h,
            });
        }
        if !(exchange_coeff.is_finite() && exchange_coeff > 0.0) {
            return Err(PhysicsError::InvalidGeometry {
                parameter: "exchange_coeff",
                value: exchange_coeff,
            });
        }
        Ok(ExchangeDispersion {
            omega_h,
            exchange_coeff,
        })
    }

    /// ω_H in rad/s.
    pub fn omega_h(&self) -> f64 {
        self.omega_h
    }

    /// The quadratic coefficient `ω_M λ_ex²` in rad·m²/s.
    pub fn exchange_coeff(&self) -> f64 {
        self.exchange_coeff
    }
}

impl DispersionRelation for ExchangeDispersion {
    fn frequency(&self, k: f64) -> f64 {
        (self.omega_h + self.exchange_coeff * k * k) / (2.0 * std::f64::consts::PI)
    }

    fn wavenumber(&self, frequency: f64) -> Result<f64, PhysicsError> {
        let fmr = self.fmr_frequency();
        if !(frequency.is_finite() && frequency > fmr) {
            return Err(PhysicsError::FrequencyBelowFmr { frequency, fmr });
        }
        let omega = 2.0 * std::f64::consts::PI * frequency;
        Ok(((omega - self.omega_h) / self.exchange_coeff).sqrt())
    }

    fn group_velocity(&self, k: f64) -> f64 {
        2.0 * self.exchange_coeff * k
    }
}

/// Forward-volume magnetostatic spin-wave dispersion with the
/// Kalinikos–Slavin lowest-mode thickness correction:
///
/// `ω(k)² = ω_h(k) · (ω_h(k) + ω_M F(kd))` with
/// `ω_h(k) = ω_H + ω_M λ_ex² k²` and `F(x) = 1 − (1 − e^{−x})/x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalinikosSlavinFvmsw {
    base: ExchangeDispersion,
    omega_m: f64,
    thickness: f64,
}

impl KalinikosSlavinFvmsw {
    /// Builds the FVMSW dispersion for a film of `thickness` (m) with
    /// out-of-plane demagnetizing factor `nz`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExchangeDispersion::new`], plus
    /// [`PhysicsError::InvalidGeometry`] for a non-positive thickness.
    pub fn new(
        material: &crate::material::Material,
        nz: f64,
        thickness: f64,
    ) -> Result<Self, PhysicsError> {
        if !(thickness.is_finite() && thickness > 0.0) {
            return Err(PhysicsError::InvalidGeometry {
                parameter: "thickness",
                value: thickness,
            });
        }
        Ok(KalinikosSlavinFvmsw {
            base: ExchangeDispersion::new(material, nz)?,
            omega_m: material.omega_m(),
            thickness,
        })
    }

    fn shape_factor(&self, k: f64) -> f64 {
        let x = k * self.thickness;
        if x < 1e-6 {
            // Series: F(x) = x/2 − x²/6 + O(x³).
            x / 2.0 - x * x / 6.0
        } else {
            // 1 − (1 − e^{−x})/x, with exp_m1 to avoid cancellation.
            1.0 + (-x).exp_m1() / x
        }
    }
}

impl DispersionRelation for KalinikosSlavinFvmsw {
    fn frequency(&self, k: f64) -> f64 {
        let omega_h = self.base.omega_h() + self.base.exchange_coeff() * k * k;
        let omega_sq = omega_h * (omega_h + self.omega_m * self.shape_factor(k));
        omega_sq.sqrt() / (2.0 * std::f64::consts::PI)
    }

    fn wavenumber(&self, frequency: f64) -> Result<f64, PhysicsError> {
        let fmr = self.fmr_frequency();
        if !(frequency.is_finite() && frequency > fmr) {
            return Err(PhysicsError::FrequencyBelowFmr { frequency, fmr });
        }
        // Strictly increasing: bracket then Brent.
        let objective = |k: f64| self.frequency(k) - frequency;
        // Initial guess from the exchange branch, which overestimates f
        // for a given k (F ≥ 0), so its k is a lower bound... actually the
        // KS frequency exceeds the exchange frequency at the same k, so
        // the exchange-branch k is an upper bound. Bracket around it.
        let k_guess = self.base.wavenumber(frequency).unwrap_or(1.0e6).max(1.0e3);
        let (lo, hi) = roots::expand_bracket(objective, 0.0, k_guess, 80)?;
        let root = roots::brent(objective, lo, hi, 1e-6, 200)?;
        Ok(root.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::Material;
    use magnon_math::constants::{GHZ, NM};

    fn paper_exchange() -> ExchangeDispersion {
        ExchangeDispersion::new(&Material::fe_co_b(), 1.0).unwrap()
    }

    fn paper_ks() -> KalinikosSlavinFvmsw {
        KalinikosSlavinFvmsw::new(&Material::fe_co_b(), 1.0, 1.0 * NM).unwrap()
    }

    #[test]
    fn fmr_matches_hand_calculation() {
        // H_i = H_ani − Ms ≈ 1.0346e5 A/m → f_FMR ≈ 3.64 GHz.
        let d = paper_exchange();
        let fmr = d.fmr_frequency();
        assert!((fmr - 3.64e9).abs() < 0.03e9, "FMR = {fmr}");
        // The KS branch has the same k→0 limit (F(0) = 0).
        assert!((paper_ks().fmr_frequency() - fmr).abs() < 1e3);
    }

    #[test]
    fn exchange_wavelengths_for_paper_channels() {
        // Wavelengths must decrease monotonically over 10..80 GHz and
        // stay within the nanoscale range the paper targets.
        let d = paper_exchange();
        let mut last = f64::INFINITY;
        for i in 1..=8 {
            let f = i as f64 * 10.0 * GHZ;
            let lambda = d.wavelength(f).unwrap();
            assert!(lambda < last);
            assert!(
                lambda > 10.0 * NM && lambda < 200.0 * NM,
                "λ({f}) = {lambda}"
            );
            last = lambda;
        }
        // Spot values from the analytic inverse (documented in DESIGN.md).
        assert!((d.wavelength(10.0 * GHZ).unwrap() - 76.5 * NM).abs() < 1.0 * NM);
        assert!((d.wavelength(80.0 * GHZ).unwrap() - 22.1 * NM).abs() < 0.5 * NM);
    }

    #[test]
    fn exchange_inversion_roundtrip() {
        let d = paper_exchange();
        for f in [5.0 * GHZ, 10.0 * GHZ, 33.3 * GHZ, 80.0 * GHZ] {
            let k = d.wavenumber(f).unwrap();
            assert!((d.frequency(k) - f).abs() / f < 1e-12);
        }
    }

    #[test]
    fn below_fmr_is_rejected() {
        let d = paper_exchange();
        let fmr = d.fmr_frequency();
        assert!(matches!(
            d.wavenumber(fmr * 0.5),
            Err(PhysicsError::FrequencyBelowFmr { .. })
        ));
        assert!(d.wavenumber(fmr).is_err());
        assert!(paper_ks().wavenumber(1.0 * GHZ).is_err());
    }

    #[test]
    fn exchange_group_velocity_analytic_matches_numeric() {
        let d = paper_exchange();
        let k = d.wavenumber(40.0 * GHZ).unwrap();
        let analytic = d.group_velocity(k);
        // Generic central-difference from the trait default:
        struct Wrap(ExchangeDispersion);
        impl DispersionRelation for Wrap {
            fn frequency(&self, k: f64) -> f64 {
                self.0.frequency(k)
            }
            fn wavenumber(&self, f: f64) -> Result<f64, PhysicsError> {
                self.0.wavenumber(f)
            }
        }
        let numeric = Wrap(d).group_velocity(k);
        assert!((analytic - numeric).abs() / analytic < 1e-4);
        assert!(analytic > 0.0);
    }

    #[test]
    fn ks_frequency_above_exchange_at_same_k() {
        // The non-local term only adds energy: f_KS(k) ≥ f_exchange(k).
        let de = paper_exchange();
        let dk = paper_ks();
        for k in [1e7, 5e7, 1e8, 3e8] {
            assert!(dk.frequency(k) >= de.frequency(k) - 1.0);
        }
    }

    #[test]
    fn ks_inversion_roundtrip() {
        let d = paper_ks();
        for f in [6.0 * GHZ, 10.0 * GHZ, 40.0 * GHZ, 80.0 * GHZ] {
            let k = d.wavenumber(f).unwrap();
            let back = d.frequency(k);
            assert!((back - f).abs() / f < 1e-6, "f={f}, back={back}");
        }
    }

    #[test]
    fn ks_monotone_in_k() {
        let d = paper_ks();
        let mut last = 0.0;
        for i in 1..200 {
            let k = i as f64 * 2e6;
            let f = d.frequency(k);
            assert!(f > last, "non-monotone at k={k}");
            last = f;
        }
    }

    #[test]
    fn ks_shape_factor_limits() {
        let d = paper_ks();
        assert!(d.shape_factor(0.0).abs() < 1e-12);
        // F is bounded by 1 and increasing.
        assert!(d.shape_factor(1e10) < 1.0);
        assert!(d.shape_factor(1e8) > d.shape_factor(1e7));
        // Series/closed-form agreement at the switch point (k·d = 1e-6):
        // the jump across the branch change must be the smooth slope
        // dF/dx ≈ 1/2 times Δx, with no extra discontinuity.
        let k_switch = 1e-6 / (1.0 * NM);
        let eps = 0.1;
        let below = d.shape_factor(k_switch - eps);
        let above = d.shape_factor(k_switch + eps);
        let expected_jump = 0.5 * (2.0 * eps * 1.0 * NM);
        assert!(
            ((above - below) - expected_jump).abs() < 1e-13,
            "below={below:e}, above={above:e}"
        );
    }

    #[test]
    fn nz_validation() {
        let m = Material::fe_co_b();
        assert!(ExchangeDispersion::new(&m, -0.1).is_err());
        assert!(ExchangeDispersion::new(&m, 1.1).is_err());
        assert!(KalinikosSlavinFvmsw::new(&m, 0.99, 0.0).is_err());
    }

    #[test]
    fn in_plane_material_is_rejected() {
        // Permalloy has no PMA: H_ani = 0 < Ms → not perpendicular.
        let m = Material::permalloy();
        assert!(matches!(
            ExchangeDispersion::new(&m, 1.0),
            Err(PhysicsError::NotPerpendicular { .. })
        ));
    }

    #[test]
    fn smaller_nz_raises_fmr() {
        // Narrower waveguides (smaller N_z) have higher FMR — the inverse
        // of the paper's width-scaling observation.
        let m = Material::fe_co_b();
        let f_film = ExchangeDispersion::new(&m, 1.0).unwrap().fmr_frequency();
        let f_bar = ExchangeDispersion::new(&m, 0.95).unwrap().fmr_frequency();
        assert!(f_bar > f_film);
    }

    #[test]
    fn from_omegas_validation() {
        assert!(ExchangeDispersion::from_omegas(0.0, 1.0).is_err());
        assert!(ExchangeDispersion::from_omegas(1.0, -1.0).is_err());
        assert!(ExchangeDispersion::from_omegas(1e10, 1e-6).is_ok());
    }
}
