//! FIG4 — reproduces Figure 4 of the paper: per-frequency detector
//! output traces of the byte-wide 3-input majority gate for all eight
//! input combinations.
//!
//! Each channel's detector trace is band-pass reconstructed around its
//! carrier (the paper's Matlab post-processing). The decoded phase
//! flips by π exactly when the majority of the three inputs is 1.
//! Writes `results/fig4_outputs.csv` with decimated traces.
//!
//! Usage: `cargo run --release -p magnon-bench --bin repro_fig4`
//! (set `REPRO_FAST=1` for a reduced 3-channel smoke run).

use magnon_bench::{combo_words, experiment_gate, fast_mode, fmt_sci, results_dir, write_csv};
use magnon_core::micromag_bridge::{MicromagValidator, ValidationSettings};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let gate = experiment_gate()?;
    let n = gate.word_width();
    let m = gate.input_count();
    let freqs = gate.channel_plan().frequencies();

    println!(
        "FIG4: per-channel output traces of the {}-channel majority gate",
        n
    );
    let settings = if fast_mode() {
        ValidationSettings {
            duration: Some(2.0e-9),
            ..ValidationSettings::default()
        }
    } else {
        ValidationSettings::default()
    };
    let mut validator = MicromagValidator::with_settings(&gate, settings);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut all_pass = true;

    println!(
        "\n{:<8} {:<10} {:>12} {:>12} {:>9} {:>9}",
        "channel", "combo", "amplitude", "phase(rad)", "decoded", "expected"
    );
    for combo in 0..(1usize << m) {
        let words = combo_words(combo, m, n)?;
        let reading = validator.evaluate(&words)?;
        let expected = (combo.count_ones() as usize) * 2 > m;
        for (c, &freq) in freqs.iter().enumerate().take(n) {
            let decoded = reading.word.bit(c)?;
            let pass = decoded == expected;
            all_pass &= pass;
            println!(
                "f{}={:>2}GHz {:<10} {:>12.4e} {:>12.3} {:>9} {:>9}{}",
                c + 1,
                (freq / 1e9).round() as u64,
                format!("{combo:0m$b}"),
                reading.amplitudes[c],
                reading.phase_deltas[c],
                decoded as u8,
                expected as u8,
                if pass { "" } else { "  << FAIL" },
            );
            // Band-pass reconstructed per-channel trace (Fig. 4 panels).
            let trace = &reading.series[c];
            let band = trace.band_pass(freqs[c], 4.0e9)?;
            for (i, &v) in band.samples().iter().enumerate().step_by(16) {
                rows.push(vec![
                    c.to_string(),
                    combo.to_string(),
                    fmt_sci(band.time_at(i)),
                    fmt_sci(v),
                ]);
            }
        }
    }

    let dir = results_dir();
    write_csv(
        &dir.join("fig4_outputs.csv"),
        &["channel", "combo", "time_s", "mx_over_ms_bandpassed"],
        &rows,
    )?;
    println!("\nwrote {}/fig4_outputs.csv", dir.display());
    println!(
        "FIG4 {}",
        if all_pass {
            "PASS: every channel's phase flips exactly when >=2 inputs are 1"
        } else {
            "FAIL"
        }
    );
    if !all_pass {
        std::process::exit(1);
    }
    Ok(())
}
