//! Integration: same-frequency interference — the gate's physical
//! primitive (paper §II). Two sources spaced an integer number of
//! wavelengths interfere constructively when in phase and destructively
//! when π out of phase; a third source decides the majority.

use spinwave_parallel::math::constants::{GHZ, NM, NS};
use spinwave_parallel::micromag::probe::Probe;
use spinwave_parallel::micromag::sim::SimulationBuilder;
use spinwave_parallel::micromag::source::Antenna;
use spinwave_parallel::physics::dispersion::DispersionRelation;
use spinwave_parallel::physics::waveguide::Waveguide;
use std::f64::consts::PI;

const F: f64 = 20.0 * GHZ;

/// Runs two sources separated by `spacing_wavelengths`·λ with the given
/// phases; returns the steady-state tone amplitude at a downstream
/// detector placed an integer number of wavelengths after the second
/// source.
fn two_source_amplitude(phase_a: f64, phase_b: f64) -> f64 {
    let guide = Waveguide::paper_default().unwrap();
    let lambda = guide.exchange_dispersion().unwrap().wavelength(F).unwrap();
    let x_a = 150.0 * NM;
    let x_b = x_a + 2.0 * lambda;
    let x_det = x_b + 3.0 * lambda;
    let output = SimulationBuilder::new(guide, x_det + 250.0 * NM)
        .unwrap()
        .cell_size(1.0 * NM)
        .unwrap()
        .add_antenna(
            Antenna::new(x_a - 5.0 * NM, 10.0 * NM, F, 1.0e4, phase_a)
                .unwrap()
                .with_ramp(2.0 / F)
                .unwrap(),
        )
        .add_antenna(
            Antenna::new(x_b - 5.0 * NM, 10.0 * NM, F, 1.0e4, phase_b)
                .unwrap()
                .with_ramp(2.0 / F)
                .unwrap(),
        )
        .add_probe(Probe::point(x_det))
        .duration(2.0 * NS)
        .unwrap()
        .run()
        .unwrap();
    output.series()[0]
        .after(1.2 * NS)
        .unwrap()
        .amplitude_at(F)
        .unwrap()
}

#[test]
fn in_phase_sources_interfere_constructively() {
    let both = two_source_amplitude(0.0, 0.0);
    let anti = two_source_amplitude(0.0, PI);
    // Constructive clearly exceeds destructive.
    assert!(
        both > 3.0 * anti,
        "constructive {both:.3e} vs destructive {anti:.3e}"
    );
}

#[test]
fn antiphase_sources_cancel() {
    let anti = two_source_amplitude(0.0, PI);
    let single = {
        // One source only, for scale.
        let guide = Waveguide::paper_default().unwrap();
        let lambda = guide.exchange_dispersion().unwrap().wavelength(F).unwrap();
        let x_a = 150.0 * NM;
        let x_det = x_a + 5.0 * lambda;
        let output = SimulationBuilder::new(guide, x_det + 250.0 * NM)
            .unwrap()
            .cell_size(1.0 * NM)
            .unwrap()
            .add_antenna(
                Antenna::new(x_a - 5.0 * NM, 10.0 * NM, F, 1.0e4, 0.0)
                    .unwrap()
                    .with_ramp(2.0 / F)
                    .unwrap(),
            )
            .add_probe(Probe::point(x_det))
            .duration(2.0 * NS)
            .unwrap()
            .run()
            .unwrap();
        output.series()[0]
            .after(1.2 * NS)
            .unwrap()
            .amplitude_at(F)
            .unwrap()
    };
    // XOR physics: anti-phase pair leaves far less than one source.
    assert!(
        anti < 0.35 * single,
        "cancellation too weak: pair {anti:.3e} vs single {single:.3e}"
    );
}

#[test]
fn different_frequencies_do_not_interfere() {
    // Two channels, both logic 0 on one and the interference measured on
    // the other: the 20 GHz tone amplitude must be unaffected by
    // whether a 40 GHz source is also driving.
    let guide = Waveguide::paper_default().unwrap();
    let lambda = guide.exchange_dispersion().unwrap().wavelength(F).unwrap();
    let x_a = 150.0 * NM;
    let x_det = x_a + 5.0 * lambda;
    let build = |with_interferer: bool| {
        let mut builder = SimulationBuilder::new(guide, x_det + 250.0 * NM)
            .unwrap()
            .cell_size(1.0 * NM)
            .unwrap()
            .add_antenna(
                Antenna::new(x_a - 5.0 * NM, 10.0 * NM, F, 1.0e4, 0.0)
                    .unwrap()
                    .with_ramp(2.0 / F)
                    .unwrap(),
            )
            .add_probe(Probe::point(x_det));
        if with_interferer {
            builder = builder.add_antenna(
                Antenna::new(x_a + 37.0 * NM, 10.0 * NM, 2.0 * F, 1.0e4, PI)
                    .unwrap()
                    .with_ramp(1.0 / F)
                    .unwrap(),
            );
        }
        builder.duration(2.0 * NS).unwrap().run().unwrap()
    };
    let alone = build(false).series()[0]
        .after(1.2 * NS)
        .unwrap()
        .amplitude_at(F)
        .unwrap();
    let with_other = build(true).series()[0]
        .after(1.2 * NS)
        .unwrap()
        .amplitude_at(F)
        .unwrap();
    let change = (with_other - alone).abs() / alone;
    assert!(
        change < 0.05,
        "20 GHz tone changed by {:.1}% when 40 GHz was added",
        change * 100.0
    );
}
