//! Integration: circuit layer on top of the gate layer — data-parallel
//! adders and parity trees validated against `u64` arithmetic, and the
//! analytic gate engine validated as the physical realisation of the
//! netlist's MAJ/XOR primitives.

use rand::{Rng, SeedableRng};
use spinwave_parallel::circuits::adder::{transpose_to_words, RippleCarryAdder};
use spinwave_parallel::circuits::parity::ParityTree;
use spinwave_parallel::core::prelude::*;
use spinwave_parallel::physics::waveguide::Waveguide;

#[test]
fn adder_against_u64_reference_random() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for bit_width in [4usize, 8, 16] {
        let adder = RippleCarryAdder::new(bit_width, 8).unwrap();
        let limit = 1u64 << bit_width;
        for _ in 0..20 {
            let a: Vec<u64> = (0..8).map(|_| rng.gen_range(0..limit)).collect();
            let b: Vec<u64> = (0..8).map(|_| rng.gen_range(0..limit)).collect();
            let sums = adder.add_many(&a, &b).unwrap();
            for c in 0..8 {
                assert_eq!(sums[c], a[c] + b[c], "width {bit_width}, channel {c}");
            }
        }
    }
}

#[test]
fn netlist_primitives_match_physical_gates() {
    // The netlist's MAJ3 must agree with the spin-wave gate evaluated
    // through the analytic engine for random operands.
    let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
        .channels(8)
        .inputs(3)
        .function(LogicFunction::Majority)
        .build()
        .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    for _ in 0..32 {
        let a = Word::from_u8(rng.gen());
        let b = Word::from_u8(rng.gen());
        let c = Word::from_u8(rng.gen());
        let physical = gate.evaluate(&[a, b, c]).unwrap().word().to_u8();
        let boolean = (a.to_u8() & b.to_u8()) | (a.to_u8() & c.to_u8()) | (b.to_u8() & c.to_u8());
        assert_eq!(physical, boolean);
    }

    let xor_gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
        .channels(8)
        .inputs(2)
        .function(LogicFunction::Xor)
        .build()
        .unwrap();
    for _ in 0..32 {
        let a = Word::from_u8(rng.gen());
        let b = Word::from_u8(rng.gen());
        let physical = xor_gate.evaluate(&[a, b]).unwrap().word().to_u8();
        assert_eq!(physical, a.to_u8() ^ b.to_u8());
    }
}

#[test]
fn parity_tree_matches_fold_random() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    for leaves in [2usize, 3, 5, 8, 13] {
        let tree = ParityTree::new(leaves, 8).unwrap();
        let bytes: Vec<u8> = (0..leaves).map(|_| rng.gen()).collect();
        let words: Vec<Word> = bytes.iter().map(|&b| Word::from_u8(b)).collect();
        let expected = bytes.iter().fold(0u8, |acc, &b| acc ^ b);
        assert_eq!(tree.evaluate(&words).unwrap().to_u8(), expected);
    }
}

#[test]
fn transpose_respects_channel_assignment() {
    let numbers = [0b1010u64, 0b0001, 0b1111, 0b0110];
    let words = transpose_to_words(&numbers, 4, 4).unwrap();
    // words[i].bit(c) == bit i of numbers[c]
    for (i, w) in words.iter().enumerate() {
        for (c, &v) in numbers.iter().enumerate() {
            assert_eq!(
                w.bit(c).unwrap(),
                (v >> i) & 1 == 1,
                "plane {i}, channel {c}"
            );
        }
    }
}

#[test]
fn adder_wide_words_and_carry_chain() {
    // 16 channels: 16 parallel additions; exercise the carry chain with
    // all-ones operands.
    let adder = RippleCarryAdder::new(8, 16).unwrap();
    let a = vec![255u64; 16];
    let b = vec![1u64; 16];
    let sums = adder.add_many(&a, &b).unwrap();
    assert!(sums.iter().all(|&s| s == 256));
}
