//! The in-line gate layout (paper Fig. 2) and its distance solver.
//!
//! All `m × n` excitation transducers and all `n` detectors sit on one
//! straight waveguide. Correct interference requires, per channel `c`:
//!
//! * consecutive same-channel sources spaced by `d_c = n_c · λ_c`
//!   (an integer number of wavelengths), and
//! * the detector an integer (direct readout) or half-odd (inverted
//!   readout) number of wavelengths past the channel's last source.
//!
//! The solver picks the smallest `d_c ≥` the interleaving floor
//! (`n + 1` transducer pitches: one slot per channel plus slack), which
//! reproduces the paper's non-monotone sequence `d_1 … d_8`, then places
//! channels greedily, scanning each channel's offset until it clears all
//! previously placed transducers (channel offsets drop out of every
//! source→detector distance, so scanning them is free).

use crate::channel::ChannelPlan;
use crate::encoding::ReadoutMode;
use crate::error::GateError;
use magnon_math::constants::NM;

/// One excitation transducer site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceSite {
    /// Channel (frequency) index.
    pub channel: usize,
    /// Input operand index `j` (0 = first input = farthest from the
    /// output).
    pub input: usize,
    /// Centre position along the guide in metres.
    pub position: f64,
}

/// One detector transducer site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorSite {
    /// Channel index.
    pub channel: usize,
    /// Centre position along the guide in metres.
    pub position: f64,
    /// Readout convention realised by this position.
    pub mode: ReadoutMode,
}

/// Geometric parameters of the layout solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutSpec {
    /// Transducer footprint along the guide (paper: 10 nm).
    pub transducer_width: f64,
    /// Minimum edge-to-edge clearance between transducers (paper: 1 nm).
    pub min_gap: f64,
}

impl Default for LayoutSpec {
    fn default() -> Self {
        LayoutSpec {
            transducer_width: 10.0 * NM,
            min_gap: 1.0 * NM,
        }
    }
}

impl LayoutSpec {
    /// Minimum centre-to-centre pitch between transducers.
    pub fn pitch(&self) -> f64 {
        self.transducer_width + self.min_gap
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for non-positive width or
    /// negative gap.
    pub fn validate(&self) -> Result<(), GateError> {
        if !(self.transducer_width.is_finite() && self.transducer_width > 0.0) {
            return Err(GateError::InvalidParameter {
                parameter: "transducer_width",
                value: self.transducer_width,
            });
        }
        if !(self.min_gap.is_finite() && self.min_gap >= 0.0) {
            return Err(GateError::InvalidParameter {
                parameter: "min_gap",
                value: self.min_gap,
            });
        }
        Ok(())
    }
}

/// A fully placed in-line gate layout.
///
/// # Examples
///
/// ```
/// use magnon_core::channel::{ChannelPlan, DispersionModel};
/// use magnon_core::encoding::ReadoutMode;
/// use magnon_core::inline::{InlineLayout, LayoutSpec};
/// use magnon_physics::waveguide::Waveguide;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let guide = Waveguide::paper_default()?;
/// let plan = ChannelPlan::uniform(&guide, DispersionModel::Exchange, 8, 10.0e9, 10.0e9)?;
/// let layout = InlineLayout::solve(
///     &plan, 3, LayoutSpec::default(), &[ReadoutMode::Direct; 8],
/// )?;
/// assert_eq!(layout.sources().len(), 24); // 8 channels × 3 inputs
/// assert_eq!(layout.detectors().len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InlineLayout {
    sources: Vec<SourceSite>,
    detectors: Vec<DetectorSite>,
    spacings: Vec<f64>,
    spec: LayoutSpec,
    channel_count: usize,
    input_count: usize,
}

impl InlineLayout {
    /// Solves source/detector positions for `plan` with `input_count`
    /// operands and per-channel readout modes.
    ///
    /// # Errors
    ///
    /// * [`GateError::InvalidParameter`] for `input_count < 2` or an
    ///   invalid spec.
    /// * [`GateError::InputCountMismatch`] when `readout.len()` differs
    ///   from the channel count.
    /// * [`GateError::LayoutCollision`] when overlaps cannot be repaired.
    pub fn solve(
        plan: &ChannelPlan,
        input_count: usize,
        spec: LayoutSpec,
        readout: &[ReadoutMode],
    ) -> Result<Self, GateError> {
        spec.validate()?;
        if input_count < 2 {
            return Err(GateError::InvalidParameter {
                parameter: "input_count",
                value: input_count as f64,
            });
        }
        let n = plan.len();
        if readout.len() != n {
            return Err(GateError::InputCountMismatch {
                expected: n,
                actual: readout.len(),
            });
        }
        let pitch = spec.pitch();
        // Same-channel spacing: smallest wavelength multiple that leaves
        // room for one source of every channel in between, plus one
        // pitch of slack so the greedy placement below always finds
        // collision-free offsets.
        let floor = (n + 1) as f64 * pitch;
        let spacings: Vec<f64> = plan
            .channels()
            .iter()
            .map(|c| (floor / c.wavelength).ceil().max(1.0) * c.wavelength)
            .collect();

        // Greedy channel placement: channels are placed one at a time;
        // a channel's offset is scanned in sub-pitch steps until all of
        // its sources clear every already-placed transducer. Channel
        // offsets are free parameters — they cancel in all
        // source→detector distances — so scanning them is legal.
        let mut offsets: Vec<f64> = vec![0.0; n];
        let mut placed: Vec<f64> = Vec::with_capacity(n * input_count);
        let step = pitch / 8.0;
        let mut attempts = 0usize;
        const MAX_ATTEMPTS: usize = 200_000;
        for c in 0..n {
            let d = spacings[c];
            let mut off = c as f64 * pitch;
            loop {
                let clear = (0..input_count).all(|j| {
                    let x = off + j as f64 * d;
                    placed
                        .iter()
                        .all(|&p| (x - p).abs() >= pitch * (1.0 - 1e-9))
                });
                if clear {
                    break;
                }
                off += step;
                attempts += 1;
                if attempts >= MAX_ATTEMPTS {
                    return Err(GateError::LayoutCollision { attempts });
                }
            }
            offsets[c] = off;
            for j in 0..input_count {
                placed.push(off + j as f64 * d);
            }
        }

        let sources: Vec<SourceSite> = (0..n)
            .flat_map(|c| {
                let off = offsets[c];
                let d = spacings[c];
                (0..input_count).map(move |j| SourceSite {
                    channel: c,
                    input: j,
                    position: off + j as f64 * d,
                })
            })
            .collect();

        // Detectors: past every source, an admissible multiple of λ_c
        // beyond the channel's last source, then nudged by further full
        // wavelengths until clear of all other transducers.
        let global_last = sources.iter().map(|s| s.position).fold(0.0f64, f64::max);
        let mut detectors: Vec<DetectorSite> = Vec::with_capacity(n);
        for (c, ch) in plan.channels().iter().enumerate() {
            let last_source = offsets[c] + (input_count - 1) as f64 * spacings[c];
            let clearance = global_last + pitch - last_source;
            let mode = readout[c];
            // Smallest admissible multiple index whose offset clears
            // `clearance`.
            let mut idx = 0usize;
            while mode.offset_in_wavelengths(idx) * ch.wavelength < clearance {
                idx += 1;
            }
            let mut position = last_source + mode.offset_in_wavelengths(idx) * ch.wavelength;
            // Clear the detector against sources and earlier detectors
            // by whole-wavelength steps (phase-invariant).
            let mut guard = 0usize;
            'clear: loop {
                for s in &sources {
                    if (s.position - position).abs() < pitch * (1.0 - 1e-9) {
                        position += ch.wavelength;
                        guard += 1;
                        if guard > 1000 {
                            return Err(GateError::LayoutCollision { attempts: guard });
                        }
                        continue 'clear;
                    }
                }
                for d in &detectors {
                    if (d.position - position).abs() < pitch * (1.0 - 1e-9) {
                        position += ch.wavelength;
                        guard += 1;
                        if guard > 1000 {
                            return Err(GateError::LayoutCollision { attempts: guard });
                        }
                        continue 'clear;
                    }
                }
                break;
            }
            detectors.push(DetectorSite {
                channel: c,
                position,
                mode,
            });
        }

        let layout = InlineLayout {
            sources,
            detectors,
            spacings,
            spec,
            channel_count: n,
            input_count,
        };
        layout.check_wavelength_multiples(plan)?;
        Ok(layout)
    }

    fn check_wavelength_multiples(&self, plan: &ChannelPlan) -> Result<(), GateError> {
        for det in &self.detectors {
            let ch = &plan.channels()[det.channel];
            for src in self.sources.iter().filter(|s| s.channel == det.channel) {
                let distance = det.position - src.position;
                if distance <= 0.0 {
                    return Err(GateError::LayoutCollision { attempts: 0 });
                }
                let in_wavelengths = distance / ch.wavelength;
                let expected_fract = match det.mode {
                    ReadoutMode::Direct => 0.0,
                    ReadoutMode::Inverted => 0.5,
                };
                let fract = in_wavelengths.fract();
                let err = (fract - expected_fract)
                    .abs()
                    .min((fract - expected_fract - 1.0).abs());
                if err > 1e-6 {
                    return Err(GateError::InvalidParameter {
                        parameter: "detector_alignment",
                        value: err,
                    });
                }
            }
        }
        Ok(())
    }

    /// All source sites (channel-major, input order within a channel).
    pub fn sources(&self) -> &[SourceSite] {
        &self.sources
    }

    /// All detector sites, one per channel.
    pub fn detectors(&self) -> &[DetectorSite] {
        &self.detectors
    }

    /// The same-channel source spacings `d_c` in metres.
    pub fn spacings(&self) -> &[f64] {
        &self.spacings
    }

    /// Geometric parameters used by the solver.
    pub fn spec(&self) -> &LayoutSpec {
        &self.spec
    }

    /// Number of channels `n`.
    pub fn channel_count(&self) -> usize {
        self.channel_count
    }

    /// Number of inputs `m`.
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Position of the source for channel `c`, input `j`.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for out-of-range indices.
    pub fn source_position(&self, channel: usize, input: usize) -> Result<f64, GateError> {
        self.sources
            .iter()
            .find(|s| s.channel == channel && s.input == input)
            .map(|s| s.position)
            .ok_or(GateError::InvalidParameter {
                parameter: "source_index",
                value: channel as f64,
            })
    }

    /// Detector position of channel `c`.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for an out-of-range index.
    pub fn detector_position(&self, channel: usize) -> Result<f64, GateError> {
        self.detectors
            .iter()
            .find(|d| d.channel == channel)
            .map(|d| d.position)
            .ok_or(GateError::InvalidParameter {
                parameter: "detector_index",
                value: channel as f64,
            })
    }

    /// First transducer centre position in metres.
    pub fn start(&self) -> f64 {
        self.sources
            .iter()
            .map(|s| s.position)
            .fold(f64::INFINITY, f64::min)
    }

    /// Last transducer centre position (always a detector) in metres.
    pub fn end(&self) -> f64 {
        self.detectors
            .iter()
            .map(|d| d.position)
            .fold(0.0f64, f64::max)
    }

    /// Occupied length along the guide, including transducer footprints.
    pub fn span(&self) -> f64 {
        self.end() - self.start() + self.spec.transducer_width
    }

    /// Verifies that no two transducer centres are closer than the
    /// pitch; returns the smallest observed centre separation.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::LayoutCollision`] when an overlap exists.
    pub fn min_separation(&self) -> Result<f64, GateError> {
        let mut positions: Vec<f64> = self
            .sources
            .iter()
            .map(|s| s.position)
            .chain(self.detectors.iter().map(|d| d.position))
            .collect();
        positions.sort_by(f64::total_cmp);
        let mut min_gap = f64::INFINITY;
        for w in positions.windows(2) {
            min_gap = min_gap.min(w[1] - w[0]);
        }
        if min_gap < self.spec.pitch() * (1.0 - 1e-6) {
            return Err(GateError::LayoutCollision { attempts: 0 });
        }
        Ok(min_gap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::DispersionModel;
    use magnon_math::constants::GHZ;
    use magnon_physics::waveguide::Waveguide;

    fn plan(n: usize) -> ChannelPlan {
        let guide = Waveguide::paper_default().unwrap();
        ChannelPlan::uniform(&guide, DispersionModel::Exchange, n, 10.0 * GHZ, 10.0 * GHZ).unwrap()
    }

    fn solve(n: usize, m: usize) -> InlineLayout {
        InlineLayout::solve(
            &plan(n),
            m,
            LayoutSpec::default(),
            &vec![ReadoutMode::Direct; n],
        )
        .unwrap()
    }

    #[test]
    fn byte_gate_site_counts() {
        let layout = solve(8, 3);
        assert_eq!(layout.sources().len(), 24);
        assert_eq!(layout.detectors().len(), 8);
        assert_eq!(layout.channel_count(), 8);
        assert_eq!(layout.input_count(), 3);
    }

    #[test]
    fn spacings_are_wavelength_multiples_above_floor() {
        let p = plan(8);
        let layout = solve(8, 3);
        let floor = 9.0 * LayoutSpec::default().pitch();
        for (d, c) in layout.spacings().iter().zip(p.channels()) {
            assert!(*d >= floor - 1e-12, "spacing below interleave floor");
            let multiple = d / c.wavelength;
            assert!(
                (multiple - multiple.round()).abs() < 1e-9,
                "d not a λ multiple"
            );
        }
    }

    #[test]
    fn spacing_sequence_non_monotone_like_paper() {
        // The paper's d_1..d_8 are not monotone because each is the
        // smallest λ-multiple above a common floor. Verify ours show the
        // same character: not sorted in either direction.
        let layout = solve(8, 3);
        let d = layout.spacings();
        let ascending = d.windows(2).all(|w| w[1] >= w[0]);
        let descending = d.windows(2).all(|w| w[1] <= w[0]);
        assert!(
            !ascending && !descending,
            "spacings unexpectedly monotone: {d:?}"
        );
    }

    #[test]
    fn no_transducer_overlaps() {
        for (n, m) in [(2, 3), (4, 3), (8, 3), (8, 5), (3, 2)] {
            let layout = InlineLayout::solve(
                &plan(n),
                m,
                LayoutSpec::default(),
                &vec![ReadoutMode::Direct; n],
            )
            .unwrap();
            let min_sep = layout.min_separation().unwrap();
            assert!(
                min_sep >= LayoutSpec::default().pitch() * 0.999,
                "({n},{m}): {min_sep}"
            );
        }
    }

    #[test]
    fn detectors_after_all_sources() {
        let layout = solve(8, 3);
        let last_source = layout
            .sources()
            .iter()
            .map(|s| s.position)
            .fold(0.0f64, f64::max);
        for d in layout.detectors() {
            assert!(d.position > last_source, "detector before a source");
        }
    }

    #[test]
    fn detector_distances_are_integer_wavelengths() {
        let p = plan(4);
        let layout =
            InlineLayout::solve(&p, 3, LayoutSpec::default(), &[ReadoutMode::Direct; 4]).unwrap();
        for det in layout.detectors() {
            let lambda = p.channels()[det.channel].wavelength;
            for src in layout.sources().iter().filter(|s| s.channel == det.channel) {
                let n = (det.position - src.position) / lambda;
                assert!((n - n.round()).abs() < 1e-6, "distance {n} not integer λ");
            }
        }
    }

    #[test]
    fn inverted_readout_offsets_by_half_wavelength() {
        let p = plan(4);
        let layout = InlineLayout::solve(
            &p,
            3,
            LayoutSpec::default(),
            &[
                ReadoutMode::Direct,
                ReadoutMode::Inverted,
                ReadoutMode::Direct,
                ReadoutMode::Inverted,
            ],
        )
        .unwrap();
        for det in layout.detectors() {
            let lambda = p.channels()[det.channel].wavelength;
            let src = layout.source_position(det.channel, 2).unwrap();
            let n = (det.position - src) / lambda;
            match det.mode {
                ReadoutMode::Direct => {
                    assert!((n - n.round()).abs() < 1e-6);
                }
                ReadoutMode::Inverted => {
                    assert!(((n - 0.5) - (n - 0.5).round()).abs() < 1e-6, "n = {n}");
                }
            }
        }
    }

    #[test]
    fn span_is_sub_micron_for_byte_gate() {
        // The paper's area advantage rests on the whole byte gate
        // fitting in well under a micron of waveguide.
        let layout = solve(8, 3);
        assert!(layout.span() < 1.0e-6, "span = {}", layout.span());
        assert!(layout.span() > 100.0e-9);
        assert!(layout.start() >= 0.0);
        assert!(layout.end() > layout.start());
    }

    #[test]
    fn accessors_reject_bad_indices() {
        let layout = solve(2, 3);
        assert!(layout.source_position(5, 0).is_err());
        assert!(layout.source_position(0, 7).is_err());
        assert!(layout.detector_position(9).is_err());
        assert!(layout.source_position(1, 2).is_ok());
    }

    #[test]
    fn input_count_validation() {
        assert!(InlineLayout::solve(
            &plan(2),
            1,
            LayoutSpec::default(),
            &[ReadoutMode::Direct; 2]
        )
        .is_err());
        assert!(InlineLayout::solve(
            &plan(2),
            3,
            LayoutSpec::default(),
            &[ReadoutMode::Direct; 1]
        )
        .is_err());
    }

    #[test]
    fn larger_channel_counts_still_solve() {
        // Scalability: the solver must handle the 16-channel case used
        // in the SCALE experiment.
        let guide = Waveguide::paper_default().unwrap();
        let p = ChannelPlan::uniform(&guide, DispersionModel::Exchange, 16, 10.0 * GHZ, 5.0 * GHZ)
            .unwrap();
        let layout =
            InlineLayout::solve(&p, 3, LayoutSpec::default(), &[ReadoutMode::Direct; 16]).unwrap();
        assert!(layout.min_separation().is_ok());
        assert_eq!(layout.sources().len(), 48);
    }
}
