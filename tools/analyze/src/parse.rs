//! Per-file Rust item parser: functions, impl owners, inline modules,
//! `use` imports, call expressions and intrinsic fact sites — all on
//! the stripped code view from the shared `magnon-lint` lexer.
//!
//! Deliberately *not* a type checker: calls are recorded by name and
//! resolved later by the graph builder (same crate, `use` imports,
//! explicit ambiguity report). `#[cfg(test)]` and `#[cfg(mcheck)]`
//! items are masked out — the analyzer models the production build.

use crate::{
    CallExpr, CallKind, Fact, FileParse, FileUses, FnDef, LockSite, SendSite, Site, WaiverDecl,
};
use magnon_lint::{
    cfg_mask, has_slice_index, is_ident_char, split_views, waiver_reason, LineViews,
};

/// Words that can never start a call expression.
const KEYWORDS: &[&str] = &[
    "if",
    "else",
    "while",
    "for",
    "loop",
    "match",
    "return",
    "let",
    "in",
    "as",
    "move",
    "ref",
    "mut",
    "pub",
    "where",
    "unsafe",
    "dyn",
    "box",
    "break",
    "continue",
    "crate",
    "super",
    "self",
    "Self",
    "async",
    "await",
    "yield",
    "true",
    "false",
    "struct",
    "enum",
    "union",
    "static",
    "const",
    "type",
    "extern",
    "macro_rules",
    "default",
];

/// Derives the module path of a file from its workspace-relative path:
/// `crates/serve/src/scheduler.rs` → `["scheduler"]`, `src/lib.rs` and
/// `src/main.rs` → the crate root, `src/sync/mod.rs` → `["sync"]`.
pub fn module_path_of(rel: &str) -> Vec<String> {
    let Some(pos) = rel.find("/src/") else {
        return Vec::new();
    };
    let tail = &rel[pos + 5..];
    let tail = tail.strip_suffix(".rs").unwrap_or(tail);
    let mut parts: Vec<&str> = tail.split('/').collect();
    if matches!(parts.last(), Some(&"mod") | Some(&"lib") | Some(&"main")) {
        parts.pop();
    }
    if parts.first() == Some(&"bin") {
        // src/bin/*.rs are their own binary crate roots.
        return Vec::new();
    }
    parts.into_iter().map(String::from).collect()
}

struct Scope {
    kind: ScopeKind,
    depth: usize,
}

enum ScopeKind {
    Mod(String),
    Impl(String),
    Fn(usize),
    Block,
}

enum Pending {
    None,
    Mod(String),
    Trait(String),
    Impl,
    Fn { name: String, line: usize },
}

struct Parser<'a> {
    crate_name: &'a str,
    rel: &'a str,
    file_mods: Vec<String>,
    lines: &'a [LineViews],
    scopes: Vec<Scope>,
    depth: usize,
    pending: Pending,
    /// Paren/bracket depth inside a pending signature, so a `;` inside
    /// `fn f(x: [u8; 4])` does not terminate the declaration.
    pending_brackets: i32,
    impl_header: String,
    use_buf: Option<String>,
    fns: Vec<FnDef>,
    uses: FileUses,
    /// Innermost fn observed at any point of the current line —
    /// intrinsic fact sites on the line attribute to it.
    line_fn: Option<usize>,
    /// Brace depth at the start of the current line, before any of its
    /// own braces — guard-extent inference anchors on it.
    line_start_depth: usize,
    /// Statement-bound lock guards whose block has not closed yet:
    /// `(fn index, lock-site index, depth the guard dies below)`.
    open_guards: Vec<(usize, usize, usize)>,
}

/// Parses one file into its functions, calls, sites and imports.
pub fn parse_file(crate_name: &str, rel: &str, source: &str) -> FileParse {
    let lines = split_views(source);
    let mask = cfg_mask(
        &lines,
        &["#[cfg(test)]", "#[cfg(all(test", "#[cfg(mcheck)]"],
    );
    let mut p = Parser {
        crate_name,
        rel,
        file_mods: module_path_of(rel),
        lines: &lines,
        scopes: Vec::new(),
        depth: 0,
        pending: Pending::None,
        pending_brackets: 0,
        impl_header: String::new(),
        use_buf: None,
        fns: Vec::new(),
        uses: FileUses::default(),
        line_fn: None,
        line_start_depth: 0,
        open_guards: Vec::new(),
    };
    for (idx, lv) in lines.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        p.line(idx, &lv.code);
    }
    // Guards still open at EOF (unbalanced braces) extend to the end.
    for (f, s, _) in std::mem::take(&mut p.open_guards) {
        p.fns[f].locks[s].release_line = lines.len();
    }
    let waiver_decls = collect_waiver_decls(rel, &lines, &mask);
    FileParse {
        fns: p.fns,
        uses: p.uses,
        waiver_decls,
    }
}

/// Every analyzer waiver comment in non-test code — the raw inventory
/// the reason gate and the JSON report run over. Doc comments are
/// skipped: they *describe* the syntax, they don't waive anything.
fn collect_waiver_decls(rel: &str, lines: &[LineViews], mask: &[bool]) -> Vec<WaiverDecl> {
    const TAG: &str = "analyze: allow(";
    let mut out = Vec::new();
    for (idx, l) in lines.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        // `/// …` and `//! …` keep a leading `/` or `!` in the comment
        // view (the stripper consumes only the first two slashes).
        let t = l.comment.trim_start();
        if t.starts_with('/') || t.starts_with('!') {
            continue;
        }
        let mut rest = l.comment.as_str();
        while let Some(p) = rest.find(TAG) {
            let after = &rest[p + TAG.len()..];
            let Some(close) = after.find(')') else {
                break;
            };
            let rule = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            let end = tail.find(TAG).unwrap_or(tail.len());
            let reason = tail[..end]
                .trim_start_matches(|c: char| {
                    c.is_whitespace() || c == '—' || c == '-' || c == ':' || c == '–'
                })
                .trim()
                .to_string();
            out.push(WaiverDecl {
                file: rel.to_string(),
                line: idx + 1,
                rule,
                reason,
            });
            rest = tail;
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

fn fact_waivers(lines: &[LineViews], idx: usize) -> [Option<String>; 3] {
    Fact::ALL.map(|f| waiver_reason(lines, idx, "analyze", f.id()))
}

impl<'a> Parser<'a> {
    fn innermost_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Fn(i) => Some(i),
            _ => None,
        })
    }

    fn innermost_impl(&self) -> Option<String> {
        self.scopes.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Impl(o) if !o.is_empty() => Some(o.clone()),
            _ => None,
        })
    }

    fn line(&mut self, idx: usize, code: &str) {
        self.line_fn = self.innermost_fn();
        self.line_start_depth = self.depth;
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0usize;
        if self.use_buf.is_some() {
            i = self.consume_use(&chars, 0);
        }
        if matches!(self.pending, Pending::Impl) {
            // Multi-line impl header: keep words separated across lines.
            self.impl_header.push(' ');
        }
        while i < chars.len() {
            let c = chars[i];
            if matches!(self.pending, Pending::Impl) {
                if c == '{' {
                    self.open_brace();
                } else {
                    self.impl_header.push(c);
                }
                i += 1;
                continue;
            }
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c == '#' {
                // Attribute: skip the whole `#[…]` / `#![…]` group.
                let mut j = i + 1;
                if chars.get(j) == Some(&'!') {
                    j += 1;
                }
                if chars.get(j) == Some(&'[') {
                    let mut d = 0i32;
                    while j < chars.len() {
                        match chars[j] {
                            '[' => d += 1,
                            ']' => {
                                d -= 1;
                                if d == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j;
                    continue;
                }
                i += 1;
                continue;
            }
            if is_ident_start(c) {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                // Signature/header words are never calls.
                if !matches!(self.pending, Pending::None) {
                    continue;
                }
                let word: String = chars[start..i].iter().collect();
                match word.as_str() {
                    "mod" => {
                        if let Some(name) = read_ident_ahead(&chars, &mut i) {
                            self.pending = Pending::Mod(name);
                            self.pending_brackets = 0;
                        }
                    }
                    "trait" => {
                        if let Some(name) = read_ident_ahead(&chars, &mut i) {
                            self.pending = Pending::Trait(name);
                            self.pending_brackets = 0;
                        }
                    }
                    "impl" => {
                        self.pending = Pending::Impl;
                        self.pending_brackets = 0;
                        self.impl_header.clear();
                    }
                    "fn" => {
                        if let Some(name) = read_ident_ahead(&chars, &mut i) {
                            self.pending = Pending::Fn {
                                name,
                                line: idx + 1,
                            };
                            self.pending_brackets = 0;
                        }
                    }
                    "use" => {
                        self.use_buf = Some(String::new());
                        i = self.consume_use(&chars, i);
                    }
                    w if ["self", "Self", "super", "crate"].contains(&w)
                        && chars.get(i) == Some(&':')
                        && chars.get(i + 1) == Some(&':') =>
                    {
                        i = self.handle_path(&chars, start, i, idx, word);
                    }
                    w if KEYWORDS.contains(&w) => {}
                    _ => {
                        i = self.handle_path(&chars, start, i, idx, word);
                    }
                }
                continue;
            }
            match c {
                '{' => self.open_brace(),
                '}' => self.close_brace(idx),
                ';' if self.pending_brackets == 0 => self.pending = Pending::None,
                '(' | '[' if !matches!(self.pending, Pending::None) => {
                    self.pending_brackets += 1;
                }
                ')' | ']' if !matches!(self.pending, Pending::None) => {
                    self.pending_brackets -= 1;
                }
                _ => {}
            }
            i += 1;
        }
        if let Some(f) = self.line_fn {
            self.scan_sites(idx, code, f);
            self.scan_locks(idx, code, f);
            for (rule, waived) in [("lock-order", 0), ("lock-block", 1)] {
                if waiver_reason(self.lines, idx, "analyze", rule).is_some() {
                    let v = if waived == 0 {
                        &mut self.fns[f].lock_order_waived
                    } else {
                        &mut self.fns[f].lock_block_waived
                    };
                    v.push(idx + 1);
                }
            }
        }
    }

    /// Parses a path expression starting at the already-read `first`
    /// segment; records a call/reference on the innermost function.
    /// Returns the scan position after the path.
    fn handle_path(
        &mut self,
        chars: &[char],
        start: usize,
        mut i: usize,
        idx: usize,
        first: String,
    ) -> usize {
        let preceded_by_dot = {
            let mut j = start;
            while j > 0 && chars[j - 1].is_whitespace() {
                j -= 1;
            }
            j > 0 && chars[j - 1] == '.' && !(j > 1 && chars[j - 2] == '.')
        };
        let on_self = preceded_by_dot && {
            let mut j = start;
            while j > 0 && chars[j - 1].is_whitespace() {
                j -= 1;
            }
            // j-1 is the '.'; read the receiver token before it.
            let mut k = j - 1;
            while k > 0 && is_ident_char(chars[k - 1]) {
                k -= 1;
            }
            let recv: String = chars[k..j - 1].iter().collect();
            recv == "self" && (k == 0 || (chars[k - 1] != '.' && !is_ident_char(chars[k - 1])))
        };
        let mut segs = vec![first];
        loop {
            if i + 1 < chars.len() && chars[i] == ':' && chars[i + 1] == ':' {
                let mut j = i + 2;
                if chars.get(j) == Some(&'<') {
                    // Turbofish: skip the angle group, then look for `(`.
                    let mut d = 0i32;
                    while j < chars.len() {
                        match chars[j] {
                            '<' => d += 1,
                            '>' => {
                                d -= 1;
                                if d == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j;
                    break;
                }
                if j < chars.len() && is_ident_start(chars[j]) {
                    let s2 = j;
                    while j < chars.len() && is_ident_char(chars[j]) {
                        j += 1;
                    }
                    segs.push(chars[s2..j].iter().collect());
                    i = j;
                    continue;
                }
            }
            break;
        }
        let next = chars.get(i).copied();
        let is_call = next == Some('(');
        let is_macro = next == Some('!');
        let Some(fn_idx) = self.line_fn.or_else(|| self.innermost_fn()) else {
            return i;
        };
        if is_macro {
            return i;
        }
        let kind = if preceded_by_dot {
            if !is_call || segs.len() != 1 {
                return i; // field access or odd chain
            }
            let name = segs.pop().unwrap_or_default();
            if starts_upper(&name) {
                return i;
            }
            CallKind::Method { name, on_self }
        } else if segs.len() > 1 {
            // Qualified path. References without a trailing `(` are
            // kept too: `map(GateOutput::logic_only)` calls the fn.
            if starts_upper(segs.last().map(String::as_str).unwrap_or("")) {
                return i; // Type/variant/const path, not a fn
            }
            CallKind::Qualified(segs)
        } else {
            if !is_call {
                return i;
            }
            let name = segs.pop().unwrap_or_default();
            if starts_upper(&name) {
                return i; // tuple-struct / enum-variant constructor
            }
            CallKind::Bare(name)
        };
        let waived = fact_waivers(self.lines, idx);
        self.fns[fn_idx].calls.push(CallExpr {
            kind,
            line: idx + 1,
            waived,
        });
        i
    }

    /// Accumulates a `use …;` statement (possibly multi-line) and
    /// parses it when the `;` arrives. Returns the position after it.
    fn consume_use(&mut self, chars: &[char], mut i: usize) -> usize {
        while i < chars.len() {
            if chars[i] == ';' {
                let buf = self.use_buf.take().unwrap_or_default();
                self.finish_use(&buf);
                return i + 1;
            }
            if let Some(buf) = self.use_buf.as_mut() {
                buf.push(chars[i]);
            }
            i += 1;
        }
        chars.len()
    }

    /// Parses the body of one `use` statement into aliases, imported
    /// crates and glob prefixes. One brace level (`use a::{b, c as d}`)
    /// is expanded; deeper nesting is skipped.
    fn finish_use(&mut self, text: &str) {
        let text = text.trim();
        let (prefix, items): (&str, Vec<String>) = match text.find('{') {
            Some(b) => {
                let inner = text[b + 1..].trim_end_matches('}');
                (
                    text[..b].trim_end_matches("::"),
                    inner.split(',').map(|s| s.trim().to_string()).collect(),
                )
            }
            None => ("", vec![text.to_string()]),
        };
        let mut scope_mods: Vec<String> = self.file_mods.clone();
        for s in &self.scopes {
            if let ScopeKind::Mod(m) = &s.kind {
                scope_mods.push(m.clone());
            }
        }
        for item in items {
            if item.is_empty() || item.contains('{') {
                continue;
            }
            let full = if prefix.is_empty() {
                item.clone()
            } else {
                format!("{prefix}::{item}")
            };
            let (path_str, alias) = match full.split_once(" as ") {
                Some((p, a)) => (p.trim().to_string(), Some(a.trim().to_string())),
                None => (full.clone(), None),
            };
            let mut segs: Vec<String> = path_str
                .split("::")
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if segs.is_empty() {
                continue;
            }
            // Normalize crate/self/super against this file's module.
            match segs[0].as_str() {
                "crate" => {
                    segs[0] = self.crate_name.to_string();
                }
                "self" => {
                    let mut p = vec![self.crate_name.to_string()];
                    p.extend(scope_mods.iter().cloned());
                    p.extend(segs.drain(1..));
                    segs = p;
                }
                "super" => {
                    let mut p = vec![self.crate_name.to_string()];
                    let parents = scope_mods.len().saturating_sub(1);
                    p.extend(scope_mods.iter().take(parents).cloned());
                    p.extend(segs.drain(1..));
                    segs = p;
                }
                first => {
                    if !["std", "core", "alloc"].contains(&first) {
                        let c = first.to_string();
                        if !self.uses.crates.contains(&c) {
                            self.uses.crates.push(c);
                        }
                    }
                }
            }
            match segs.last().map(String::as_str) {
                Some("*") => {
                    segs.pop();
                    self.uses.globs.push(segs);
                }
                Some("self") => {
                    segs.pop(); // `use a::b::{self}` imports module b
                }
                Some(last) => {
                    let name = alias.unwrap_or_else(|| last.to_string());
                    self.uses.aliases.push((name, segs));
                }
                None => {}
            }
        }
    }

    fn open_brace(&mut self) {
        let pending = std::mem::replace(&mut self.pending, Pending::None);
        let kind = match pending {
            Pending::Mod(name) => ScopeKind::Mod(name),
            Pending::Trait(name) => ScopeKind::Impl(name),
            Pending::Impl => ScopeKind::Impl(owner_of(&self.impl_header)),
            Pending::Fn { name, line } => {
                let mut path = vec![self.crate_name.to_string()];
                path.extend(self.file_mods.iter().cloned());
                let mut module = self.file_mods.clone();
                for s in &self.scopes {
                    if let ScopeKind::Mod(m) = &s.kind {
                        path.push(m.clone());
                        module.push(m.clone());
                    }
                }
                let owner = self.innermost_impl();
                if let Some(o) = &owner {
                    path.push(o.clone());
                }
                path.push(name.clone());
                let idx = self.fns.len();
                self.fns.push(FnDef {
                    id: path.join("::"),
                    crate_name: self.crate_name.to_string(),
                    name,
                    owner,
                    module,
                    file: self.rel.to_string(),
                    line,
                    calls: Vec::new(),
                    sites: Vec::new(),
                    locks: Vec::new(),
                    sends: Vec::new(),
                    lock_order_waived: Vec::new(),
                    lock_block_waived: Vec::new(),
                });
                self.line_fn = Some(idx);
                ScopeKind::Fn(idx)
            }
            Pending::None => ScopeKind::Block,
        };
        self.scopes.push(Scope {
            kind,
            depth: self.depth,
        });
        self.depth += 1;
    }

    fn close_brace(&mut self, idx: usize) {
        self.depth = self.depth.saturating_sub(1);
        while matches!(self.scopes.last(), Some(s) if s.depth == self.depth) {
            self.scopes.pop();
        }
        if !self.open_guards.is_empty() {
            let depth = self.depth;
            let fns = &mut self.fns;
            self.open_guards.retain(|&(f, s, assoc)| {
                if depth < assoc {
                    fns[f].locks[s].release_line = idx + 1;
                    false
                } else {
                    true
                }
            });
        }
    }

    /// Token-level intrinsic facts on one line — the leaves transitive
    /// reachability propagates up from. These cover `std` effects the
    /// call graph cannot see (no edges into `std`).
    fn scan_sites(&mut self, idx: usize, code: &str, fn_idx: usize) {
        let mut found: Vec<(Fact, &str)> = Vec::new();
        for t in [".unwrap()", ".expect(", ".expect_err("] {
            if code.contains(t) {
                found.push((Fact::Panic, t));
            }
        }
        for m in [
            "panic!",
            "unreachable!",
            "todo!",
            "unimplemented!",
            "assert!",
            "assert_eq!",
            "assert_ne!",
        ] {
            if has_macro(code, m) {
                found.push((Fact::Panic, m));
            }
        }
        if has_slice_index(code) {
            found.push((Fact::Panic, "slice-index"));
        }
        for t in ["sleep", "park", "park_timeout"] {
            if has_call_token(code, t) {
                found.push((Fact::Block, t));
            }
        }
        for t in [
            ".recv()",
            ".recv_timeout(",
            ".recv_deadline(",
            ".wait(",
            ".wait_timeout(",
            ".wait_while(",
            ".join()",
            ".lock(",
        ] {
            if code.contains(t) {
                found.push((Fact::Block, t));
            }
        }
        for t in [
            "Vec::with_capacity(",
            "VecDeque::with_capacity(",
            "String::with_capacity(",
            "String::from(",
            "vec![",
            "format!(",
            "Box::new(",
            "Arc::new(",
            "Rc::new(",
            ".to_vec()",
            ".to_string()",
            ".to_owned()",
            ".push(",
            ".push_str(",
            ".push_back(",
            ".push_front(",
            ".extend(",
            ".extend_from_slice(",
            ".insert(",
            ".append(",
            ".resize(",
            ".reserve(",
            ".split_off(",
            ".collect",
            ".or_insert(",
            ".or_insert_with(",
            ".or_default()",
        ] {
            if code.contains(t) {
                found.push((Fact::Alloc, t));
            }
        }
        for (fact, token) in found {
            let waived = waiver_reason(self.lines, idx, "analyze", fact.id());
            self.fns[fn_idx].sites.push(Site {
                fact,
                token: token.to_string(),
                line: idx + 1,
                waived,
            });
        }
    }

    /// `.lock()` acquisition sites (with inferred guard extents) and
    /// `.send(` sites, for the lock-discipline pass.
    ///
    /// Guard-extent heuristic: a guard bound by its statement — the
    /// chain ends in `;`, a `{` follows (`if let Ok(g) = m.lock() {`),
    /// or the chain runs off the line — lives to the end of the
    /// enclosing block; a guard consumed inside a larger expression
    /// (`take(&mut *m.lock()?)`) dies on its own line. Deliberately
    /// conservative: an over-long extent can only flag more, never
    /// hide a held lock.
    fn scan_locks(&mut self, idx: usize, code: &str, fn_idx: usize) {
        let chars: Vec<char> = code.chars().collect();
        let mut depth_here = self.line_start_depth as i64;
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c == '{' {
                depth_here += 1;
            } else if c == '}' {
                depth_here -= 1;
            } else if c == '.' && matches_at(&chars, i + 1, "send(") {
                let receiver = ident_before(&chars, i);
                if !receiver.is_empty() {
                    self.fns[fn_idx].sends.push(SendSite {
                        receiver,
                        line: idx + 1,
                    });
                }
                i += 6;
                continue;
            } else if c == '.' && matches_at(&chars, i + 1, "lock(") {
                let mut receiver = ident_before(&chars, i);
                if receiver.is_empty() && chars[..i].iter().all(|c| c.is_whitespace()) {
                    // Chain continuation (`self.counts\n.lock()`):
                    // take the receiver from the previous code line.
                    for back in (idx.saturating_sub(2)..idx).rev() {
                        let prev = trailing_ident(&self.lines[back].code);
                        if !prev.is_empty() {
                            receiver = prev;
                            break;
                        }
                        if !self.lines[back].code.trim().is_empty() {
                            break;
                        }
                    }
                }
                if receiver.is_empty() {
                    // `(…).lock()` and friends: keep the site visible so
                    // strict crates surface it instead of hiding it.
                    receiver = "?".to_string();
                }
                let depth_at = depth_here.max(0) as usize;
                let mut j = skip_paren_group(&chars, i + 5);
                // Chained adapters (`.unwrap()`, `.expect(…)`, `?`) stay
                // part of the acquisition expression and still yield the
                // guard; any *other* chained method (`.len()`, `.push(…)`)
                // consumes it — the guard dies with the statement.
                let mut guard_consumed = false;
                loop {
                    match chars.get(j) {
                        Some('?') => j += 1,
                        Some('.') if chars.get(j + 1).copied().is_some_and(is_ident_start) => {
                            let mut name_end = j + 1;
                            while chars.get(name_end).copied().is_some_and(is_ident_char) {
                                name_end += 1;
                            }
                            let name: String = chars[j + 1..name_end].iter().collect();
                            if !matches!(name.as_str(), "unwrap" | "expect" | "unwrap_or_else") {
                                guard_consumed = true;
                                break;
                            }
                            j = name_end;
                            if chars.get(j) == Some(&'(') {
                                j = skip_paren_group(&chars, j);
                            }
                        }
                        _ => break,
                    }
                }
                let mut k = j;
                while chars.get(k).is_some_and(|c| c.is_whitespace()) {
                    k += 1;
                }
                let site = self.fns[fn_idx].locks.len();
                let (release_line, assoc) = if guard_consumed {
                    (idx + 1, None)
                } else {
                    match chars.get(k) {
                        None | Some(&';') => (0, Some(depth_at)),
                        Some(&'{') => (0, Some(depth_at + 1)),
                        _ => (idx + 1, None),
                    }
                };
                self.fns[fn_idx].locks.push(LockSite {
                    receiver,
                    line: idx + 1,
                    release_line,
                });
                if let Some(a) = assoc {
                    self.open_guards.push((fn_idx, site, a));
                }
                i = j.max(i + 1);
                continue;
            }
            i += 1;
        }
    }
}

fn matches_at(chars: &[char], at: usize, pat: &str) -> bool {
    pat.chars()
        .enumerate()
        .all(|(k, pc)| chars.get(at + k) == Some(&pc))
}

/// The identifier ending just before `chars[end]`.
fn ident_before(chars: &[char], end: usize) -> String {
    let mut k = end;
    while k > 0 && is_ident_char(chars[k - 1]) {
        k -= 1;
    }
    chars[k..end].iter().collect()
}

/// The identifier a code view ends with (ignoring trailing spaces).
fn trailing_ident(code: &str) -> String {
    let chars: Vec<char> = code.trim_end().chars().collect();
    ident_before(&chars, chars.len())
}

/// From an opening `(`, the index just past its match (line end when
/// the argument list spills onto further lines).
fn skip_paren_group(chars: &[char], mut j: usize) -> usize {
    let mut d = 0i32;
    while j < chars.len() {
        match chars[j] {
            '(' => d += 1,
            ')' => {
                d -= 1;
                if d == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    chars.len()
}

fn read_ident_ahead(chars: &[char], i: &mut usize) -> Option<String> {
    let mut j = *i;
    while j < chars.len() && chars[j].is_whitespace() {
        j += 1;
    }
    if j < chars.len() && is_ident_start(chars[j]) {
        let start = j;
        while j < chars.len() && is_ident_char(chars[j]) {
            j += 1;
        }
        *i = j;
        return Some(chars[start..j].iter().collect());
    }
    None
}

/// Extracts the implementing type name from an accumulated impl
/// header: `<T: Policy> Explorer<T>` → `Explorer`, `Display for
/// Finding` → `Finding`.
fn owner_of(header: &str) -> String {
    let mut h = header.trim();
    if h.starts_with('<') {
        let chars: Vec<char> = h.chars().collect();
        let mut d = 0i32;
        let mut end = chars.len();
        for (k, &c) in chars.iter().enumerate() {
            match c {
                '<' => d += 1,
                '>' => {
                    d -= 1;
                    if d == 0 {
                        end = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        h = h[chars[..end].iter().map(|c| c.len_utf8()).sum::<usize>()..].trim();
    }
    let target = h.rfind(" for ").map(|p| h[p + 5..].trim()).unwrap_or(h);
    let end = target
        .find(|c: char| c == '<' || c.is_whitespace() || c == '{')
        .unwrap_or(target.len());
    target[..end]
        .rsplit("::")
        .next()
        .unwrap_or("")
        .trim_start_matches('&')
        .to_string()
}

/// `name!` with an identifier boundary before it (so `debug_assert!`
/// does not count as `assert!`).
fn has_macro(code: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(pat) {
        let start = from + pos;
        let before_ok =
            start == 0 || !is_ident_char(code[..start].chars().next_back().unwrap_or(' '));
        if before_ok {
            return true;
        }
        from = start + pat.len();
    }
    false
}

/// A free-fn-style call token: `word(`, with an identifier boundary
/// before the word (catches `thread::sleep(d)` and bare `park()`).
fn has_call_token(code: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok =
            start == 0 || !is_ident_char(code[..start].chars().next_back().unwrap_or(' '));
        let at_call = code[end..].starts_with('(');
        if before_ok && at_call {
            return true;
        }
        from = end;
    }
    false
}
