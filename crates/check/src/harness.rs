//! The exploration driver: runs a body under many schedules, dedupes
//! interleavings, and reports the first invariant violation with a
//! replay token.
//!
//! Executions are process-global (the controller serializes one at a
//! time), so every entry point here takes a global lock — concurrent
//! `cargo test` threads queue up instead of tripping the controller's
//! single-execution assert.

use crate::policy::{BoundedExplorer, GuidedPolicy, RandomPolicy};
use magnon_core::sync::mcheck::{run_execution, RunOutcome};
use std::collections::HashSet;
// lint: allow(std-sync-import) — the controller's own lock cannot ride the
// façade it instruments: a modeled mutex would add yield points to every run.
use std::sync::{Arc, Mutex, MutexGuard};

static EXPLORE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    EXPLORE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Knobs for [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Seeds to try, in order.
    pub seeds: std::ops::Range<u64>,
    /// Preemption probability per yield point (percent).
    pub preempt_percent: u8,
    /// Yield-point budget per run before the controller reports a
    /// livelock.
    pub step_limit: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            seeds: 0..500,
            preempt_percent: 25,
            step_limit: 200_000,
        }
    }
}

/// How to reproduce one specific run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayToken {
    /// A [`RandomPolicy`] run: seed plus preemption percent.
    Seed {
        /// The failing seed.
        seed: u64,
        /// The preemption percent the exploration used.
        preempt_percent: u8,
    },
    /// A [`GuidedPolicy`] run from bounded-exhaustive mode: the
    /// decision path.
    Path(Vec<usize>),
}

impl std::fmt::Display for ReplayToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayToken::Seed {
                seed,
                preempt_percent,
            } => write!(f, "seed {seed} (preempt {preempt_percent}%)"),
            ReplayToken::Path(path) => write!(f, "path {path:?}"),
        }
    }
}

/// One invariant violation, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// How to rerun this exact interleaving.
    pub token: ReplayToken,
    /// The panic message or controller failure (deadlock/step limit).
    pub message: String,
    /// The rendered event trace of the failing run.
    pub trace: String,
    /// The schedule hash of the failing run (replays must match it).
    pub schedule_hash: u64,
}

/// What an exploration covered.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Runs executed.
    pub runs: u64,
    /// Distinct interleavings seen (by schedule hash).
    pub distinct_schedules: u64,
    /// The first failure, if any (exploration stops at it).
    pub failure: Option<Failure>,
}

impl ExploreReport {
    /// Panics with a replay-ready message when the exploration found a
    /// violation — the one-liner for tests.
    pub fn assert_clean(&self, scenario: &str) {
        if let Some(f) = &self.failure {
            panic!(
                "model check failed: scenario `{scenario}`, replay with {}\n\
                 failure: {}\ntrace ({} bytes):\n{}",
                f.token,
                f.message,
                f.trace.len(),
                tail(&f.trace, 40),
            );
        }
    }
}

/// The last `n` lines of a rendered trace (failing traces run long;
/// the tail holds the crime scene).
fn tail(trace: &str, n: usize) -> String {
    let lines: Vec<&str> = trace.lines().collect();
    let start = lines.len().saturating_sub(n);
    lines[start..].join("\n")
}

fn failure_of(outcome: &RunOutcome, token: ReplayToken) -> Option<Failure> {
    let message = match (&outcome.failure, &outcome.root_panic) {
        (Some(fail), Some(panic)) => format!("{fail}; root panic: {panic}"),
        (Some(fail), None) => fail.to_string(),
        (None, Some(panic)) => format!("root panic: {panic}"),
        (None, None) => return None,
    };
    Some(Failure {
        token,
        message,
        trace: outcome.trace.render(),
        schedule_hash: outcome.trace.schedule_hash(),
    })
}

/// Runs `body` once under a seeded random schedule. Returns the raw
/// outcome (trace included) — [`replay`]'s workhorse.
pub fn run_seed<F>(body: F, seed: u64, preempt_percent: u8, step_limit: u64) -> RunOutcome
where
    F: Fn() + Send + Sync + Clone + 'static,
{
    let _g = lock();
    run_seed_locked(body, seed, preempt_percent, step_limit)
}

fn run_seed_locked<F>(body: F, seed: u64, preempt_percent: u8, step_limit: u64) -> RunOutcome
where
    F: Fn() + Send + Sync + Clone + 'static,
{
    run_execution(
        Box::new(RandomPolicy::new(seed, preempt_percent)),
        step_limit,
        body,
    )
}

/// Reruns one specific schedule from its token. The returned outcome's
/// trace is byte-identical to the original run's (same body, same
/// token ⇒ same interleaving).
pub fn replay<F>(body: F, token: &ReplayToken, step_limit: u64) -> RunOutcome
where
    F: Fn() + Send + Sync + Clone + 'static,
{
    let _g = lock();
    match token {
        ReplayToken::Seed {
            seed,
            preempt_percent,
        } => run_seed_locked(body, *seed, *preempt_percent, step_limit),
        ReplayToken::Path(path) => {
            let counts = Arc::new(Mutex::new(Vec::new()));
            run_execution(
                Box::new(GuidedPolicy::new(path.clone(), counts)),
                step_limit,
                body,
            )
        }
    }
}

/// Seeded random interleaving search: runs `body` once per seed,
/// stopping at the first violation.
pub fn explore<F>(body: F, config: &ExploreConfig) -> ExploreReport
where
    F: Fn() + Send + Sync + Clone + 'static,
{
    let _g = lock();
    let mut hashes = HashSet::new();
    let mut runs = 0u64;
    for seed in config.seeds.clone() {
        let outcome = run_seed_locked(
            body.clone(),
            seed,
            config.preempt_percent,
            config.step_limit,
        );
        runs += 1;
        hashes.insert(outcome.trace.schedule_hash());
        let token = ReplayToken::Seed {
            seed,
            preempt_percent: config.preempt_percent,
        };
        if let Some(failure) = failure_of(&outcome, token) {
            return ExploreReport {
                runs,
                distinct_schedules: hashes.len() as u64,
                failure: Some(failure),
            };
        }
    }
    ExploreReport {
        runs,
        distinct_schedules: hashes.len() as u64,
        failure: None,
    }
}

/// Bounded-preemption exhaustive mode: enumerates every schedule with
/// at most `max_preemptions` non-default decisions (complete for small
/// configs), capped at `max_runs`.
pub fn explore_bounded<F>(
    body: F,
    max_preemptions: usize,
    step_limit: u64,
    max_runs: u64,
) -> ExploreReport
where
    F: Fn() + Send + Sync + Clone + 'static,
{
    let _g = lock();
    let mut explorer = BoundedExplorer::new(max_preemptions);
    let mut hashes = HashSet::new();
    let mut runs = 0u64;
    while let Some(path) = explorer.next_path() {
        if runs >= max_runs {
            break;
        }
        let counts = Arc::new(Mutex::new(Vec::new()));
        let outcome = run_execution(
            Box::new(GuidedPolicy::new(path.clone(), Arc::clone(&counts))),
            step_limit,
            {
                let body = body.clone();
                move || body()
            },
        );
        runs += 1;
        hashes.insert(outcome.trace.schedule_hash());
        if let Some(failure) = failure_of(&outcome, ReplayToken::Path(path.clone())) {
            return ExploreReport {
                runs,
                distinct_schedules: hashes.len() as u64,
                failure: Some(failure),
            };
        }
        let counts = counts.lock().unwrap_or_else(|e| e.into_inner());
        explorer.advance(&path, &counts);
    }
    ExploreReport {
        runs,
        distinct_schedules: hashes.len() as u64,
        failure: None,
    }
}
