//! Area-advantage sweeps: how the paper's 4.16× generalises with the
//! word width and the input count.
//!
//! The paper evaluates one point (n = 8, m = 3). The advantage is not
//! constant: replication area grows linearly in `n` while the parallel
//! gate grows sub-linearly (shared waveguide, only the interleave floor
//! stretches), so wider words win more — *on average*. Because the
//! same-channel spacings are quantized to wavelength multiples, the
//! floor occasionally jumps a full wavelength and the trend locally
//! reverses (e.g. n = 12 at 5 GHz spacing scores below n = 8); the
//! sweep exposes exactly this structure.

use crate::compare::CostModel;
use magnon_core::gate::ParallelGateBuilder;
use magnon_core::truth::LogicFunction;
use magnon_core::GateError;
use magnon_physics::waveguide::Waveguide;

/// One point of an area-advantage sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Word width `n`.
    pub channels: usize,
    /// Input count `m`.
    pub inputs: usize,
    /// Parallel gate area in m².
    pub parallel_area: f64,
    /// Replicated scalar area in m².
    pub scalar_area: f64,
    /// `scalar / parallel` area ratio.
    pub area_ratio: f64,
}

/// Sweeps the word width at fixed input count.
///
/// `f_step` must keep every channel allocatable (all above FMR and
/// below any intended cap).
///
/// # Errors
///
/// Propagates gate construction errors.
///
/// # Examples
///
/// ```
/// use magnon_cost::sweep::word_width_sweep;
/// use magnon_cost::CostModel;
/// use magnon_physics::waveguide::Waveguide;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let points = word_width_sweep(
///     &CostModel::default(),
///     &Waveguide::paper_default()?,
///     3,
///     &[2, 4, 8],
///     10.0e9,
///     10.0e9,
/// )?;
/// // Wider words enjoy a larger area advantage.
/// assert!(points[2].area_ratio > points[0].area_ratio);
/// # Ok(())
/// # }
/// ```
pub fn word_width_sweep(
    model: &CostModel,
    waveguide: &Waveguide,
    inputs: usize,
    channel_counts: &[usize],
    f_start: f64,
    f_step: f64,
) -> Result<Vec<SweepPoint>, GateError> {
    channel_counts
        .iter()
        .map(|&n| {
            let gate = ParallelGateBuilder::new(*waveguide)
                .channels(n)
                .inputs(inputs)
                .function(LogicFunction::Majority)
                .base_frequency(f_start)
                .frequency_step(f_step)
                .build()?;
            let cmp = model.compare(&gate)?;
            Ok(SweepPoint {
                channels: n,
                inputs,
                parallel_area: cmp.parallel.area,
                scalar_area: cmp.scalar.area,
                area_ratio: cmp.area_ratio(),
            })
        })
        .collect()
}

/// Sweeps the input count at fixed word width (odd inputs only —
/// majority gates).
///
/// # Errors
///
/// Propagates gate construction errors.
pub fn input_count_sweep(
    model: &CostModel,
    waveguide: &Waveguide,
    channels: usize,
    input_counts: &[usize],
    f_start: f64,
    f_step: f64,
) -> Result<Vec<SweepPoint>, GateError> {
    input_counts
        .iter()
        .map(|&m| {
            let gate = ParallelGateBuilder::new(*waveguide)
                .channels(channels)
                .inputs(m)
                .function(LogicFunction::Majority)
                .base_frequency(f_start)
                .frequency_step(f_step)
                .build()?;
            let cmp = model.compare(&gate)?;
            Ok(SweepPoint {
                channels,
                inputs: m,
                parallel_area: cmp.parallel.area,
                scalar_area: cmp.scalar.area,
                area_ratio: cmp.area_ratio(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_math::constants::GHZ;

    fn model() -> CostModel {
        CostModel::default()
    }

    fn guide() -> Waveguide {
        Waveguide::paper_default().unwrap()
    }

    #[test]
    fn advantage_grows_with_word_width_overall() {
        let points =
            word_width_sweep(&model(), &guide(), 3, &[2, 4, 8, 12], 10.0 * GHZ, 5.0 * GHZ).unwrap();
        assert_eq!(points.len(), 4);
        // The trend: wider words clearly beat narrow ones, even though
        // wavelength-multiple quantization makes the curve non-monotone
        // point to point (n=12 can dip below n=8).
        assert!(
            points[2].area_ratio > points[0].area_ratio + 0.5,
            "{points:?}"
        );
        assert!(points.iter().all(|p| p.area_ratio > 1.5));
        // Scalar area is exactly linear in n (same gate, n copies).
        let per_gate = points[0].scalar_area / 2.0;
        for p in &points {
            assert!((p.scalar_area - per_gate * p.channels as f64).abs() / p.scalar_area < 1e-9);
        }
    }

    #[test]
    fn quantization_makes_curve_non_monotone() {
        // Document the interleave-floor quantization effect explicitly:
        // at 5 GHz spacing the n=12 ratio falls below the n=8 ratio.
        let points =
            word_width_sweep(&model(), &guide(), 3, &[8, 12], 10.0 * GHZ, 5.0 * GHZ).unwrap();
        assert!(
            points[1].area_ratio < points[0].area_ratio,
            "expected the documented local reversal: {points:?}"
        );
    }

    #[test]
    fn paper_point_is_on_the_curve() {
        let points = word_width_sweep(&model(), &guide(), 3, &[8], 10.0 * GHZ, 10.0 * GHZ).unwrap();
        assert_eq!(points[0].channels, 8);
        assert!(points[0].area_ratio > 3.0 && points[0].area_ratio < 4.5);
    }

    #[test]
    fn input_sweep_valid_for_odd_counts() {
        let points =
            input_count_sweep(&model(), &guide(), 4, &[3, 5, 7], 10.0 * GHZ, 10.0 * GHZ).unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.area_ratio > 1.0);
            assert!(p.parallel_area > 0.0);
        }
        // More inputs -> longer gates on both sides.
        assert!(points[2].parallel_area > points[0].parallel_area);
        assert!(points[2].scalar_area > points[0].scalar_area);
    }

    #[test]
    fn even_input_counts_rejected() {
        assert!(input_count_sweep(&model(), &guide(), 4, &[4], 10.0 * GHZ, 10.0 * GHZ).is_err());
    }
}
