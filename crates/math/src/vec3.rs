//! Three-component vectors for magnetization and field arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-vector with `f64` components.
///
/// In the micromagnetic crates `Vec3` represents unit magnetization
/// directions `m`, effective fields `H_eff` (A/m) and spatial axes.
///
/// # Examples
///
/// ```
/// use magnon_math::Vec3;
///
/// let m = Vec3::Z;
/// let h = Vec3::new(0.0, 1.0e5, 0.0);
/// let torque = m.cross(h);
/// assert!((torque.x + 1.0e5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Unit vector along +x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };

    /// Unit vector along +y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };

    /// Unit vector along +z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    ///
    /// # Examples
    ///
    /// ```
    /// use magnon_math::Vec3;
    /// assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
    /// ```
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm |v|.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm |v|².
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.dot(self)
    }

    /// Returns the unit vector along `self`, or `None` for a (near-)zero
    /// vector.
    ///
    /// # Examples
    ///
    /// ```
    /// use magnon_math::Vec3;
    /// let n = Vec3::new(0.0, 0.0, 2.0).normalized().unwrap();
    /// assert_eq!(n, Vec3::Z);
    /// assert!(Vec3::ZERO.normalized().is_none());
    /// ```
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Renormalizes in place to unit length, leaving near-zero vectors
    /// untouched. Used by LLG integrators to project back onto the unit
    /// sphere after each step.
    #[inline]
    pub fn renormalize(&mut self) {
        let n = self.norm();
        if n > 1e-300 {
            self.x /= n;
            self.y /= n;
            self.z /= n;
        }
    }

    /// Linear interpolation `self + t (rhs − self)`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Component-wise multiplication (Hadamard product); used for
    /// diagonal demagnetizing tensors `N ∘ M`.
    #[inline]
    pub fn component_mul(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// `true` when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// The largest absolute component.
    #[inline]
    pub fn max_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        self.x += rhs.x;
        self.y += rhs.y;
        self.z += rhs.z;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        self.x -= rhs.x;
        self.y -= rhs.y;
        self.z -= rhs.z;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.x *= rhs;
        self.y *= rhs;
        self.z *= rhs;
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn basis_vectors_are_orthonormal() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::Y.dot(Vec3::Z), 0.0);
        assert_eq!(Vec3::X.norm(), 1.0);
    }

    #[test]
    fn cross_product_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn cross_is_antisymmetric() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-0.5, 4.0, 1.5);
        let c = a.cross(b) + b.cross(a);
        assert!(c.norm() < EPS);
    }

    #[test]
    fn cross_is_perpendicular() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-0.5, 4.0, 1.5);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < EPS);
        assert!(c.dot(b).abs() < EPS);
    }

    #[test]
    fn normalization() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        let n = v.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < EPS);
        assert!((n.x - 0.6).abs() < EPS);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn renormalize_in_place() {
        let mut v = Vec3::new(0.0, 0.0, 5.0);
        v.renormalize();
        assert_eq!(v, Vec3::Z);
        let mut z = Vec3::ZERO;
        z.renormalize();
        assert_eq!(z, Vec3::ZERO);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::X;
        let b = Vec3::Y;
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert!((mid.x - 0.5).abs() < EPS && (mid.y - 0.5).abs() < EPS);
    }

    #[test]
    fn component_mul_models_diagonal_tensor() {
        let n = Vec3::new(0.0, 0.1, 0.9);
        let m = Vec3::new(1.0, 1.0, 1.0);
        assert_eq!(n.component_mul(m), n);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::splat(3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::X;
        v += Vec3::Y;
        v -= Vec3::X;
        v *= 3.0;
        assert_eq!(v, Vec3::new(0.0, 3.0, 0.0));
    }

    #[test]
    fn max_abs_and_finite() {
        assert_eq!(Vec3::new(-5.0, 2.0, 3.0).max_abs(), 5.0);
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(Vec3::Z.is_finite());
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(Vec3::ZERO.to_string(), "(0, 0, 0)");
    }
}
