//! Graded-damping absorbing boundaries.
//!
//! A finite waveguide reflects spin waves at its ends; reflections
//! corrupt the interference pattern the gate relies on. The standard
//! micromagnetic remedy — used by the paper's OOMMF setup and here — is
//! to raise the Gilbert damping smoothly toward the ends so incoming
//! waves are dissipated instead of reflected. A quadratic profile keeps
//! the impedance mismatch (and hence residual reflection) small.

use crate::error::SimError;
use crate::mesh::Mesh;

/// Specification of symmetric graded-damping absorbers at both ends of
/// the waveguide.
///
/// # Examples
///
/// ```
/// use magnon_micromag::absorber::Absorber;
/// use magnon_micromag::mesh::Mesh;
///
/// # fn main() -> Result<(), magnon_micromag::SimError> {
/// let mesh = Mesh::line(1.0e-6, 2.0e-9, 50.0e-9, 1.0e-9)?;
/// let absorber = Absorber::new(100.0e-9, 0.5)?;
/// let alpha = absorber.damping_profile(&mesh, 0.004)?;
/// assert!((alpha[0] - 0.5).abs() < 0.02);            // strongly damped edge
/// assert!((alpha[mesh.nx() / 2] - 0.004).abs() < 1e-12); // pristine interior
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Absorber {
    width: f64,
    alpha_max: f64,
}

impl Absorber {
    /// Creates an absorber of physical `width` (m) at each end, ramping
    /// the damping quadratically up to `alpha_max` at the boundary.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for non-positive width or
    /// `alpha_max` outside `(0, 1]`.
    pub fn new(width: f64, alpha_max: f64) -> Result<Self, SimError> {
        if !(width.is_finite() && width > 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "width",
                value: width,
            });
        }
        if !(alpha_max.is_finite() && alpha_max > 0.0 && alpha_max <= 1.0) {
            return Err(SimError::InvalidParameter {
                parameter: "alpha_max",
                value: alpha_max,
            });
        }
        Ok(Absorber { width, alpha_max })
    }

    /// Absorber width at each end in metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Peak damping at the boundary.
    pub fn alpha_max(&self) -> f64 {
        self.alpha_max
    }

    /// Builds the per-column damping profile for `mesh` on top of the
    /// material damping `alpha_base`: quadratic ramps from `alpha_base`
    /// at the inner absorber edge to `alpha_max` at the waveguide ends.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RegionOutOfBounds`] when the two absorbers
    /// would overlap (combined width ≥ mesh length) and
    /// [`SimError::InvalidParameter`] for `alpha_base` outside `(0, 1)`.
    pub fn damping_profile(&self, mesh: &Mesh, alpha_base: f64) -> Result<Vec<f64>, SimError> {
        if !(alpha_base.is_finite() && alpha_base > 0.0 && alpha_base < 1.0) {
            return Err(SimError::InvalidParameter {
                parameter: "alpha_base",
                value: alpha_base,
            });
        }
        if 2.0 * self.width >= mesh.length() {
            return Err(SimError::RegionOutOfBounds {
                what: "absorber",
                requested: 2.0 * self.width,
                available: mesh.length(),
            });
        }
        let nx = mesh.nx();
        let mut alpha = vec![alpha_base; nx];
        let n_cells = (self.width / mesh.dx()).round() as usize;
        let n_cells = n_cells.clamp(1, nx / 2);
        let delta = self.alpha_max - alpha_base;
        for c in 0..n_cells {
            // Normalised distance into the absorber: 1 at the boundary,
            // 0 at its inner edge.
            let depth = (n_cells - c) as f64 / n_cells as f64;
            let add = delta * depth * depth;
            alpha[c] = alpha_base + add.max(0.0);
            alpha[nx - 1 - c] = alpha_base + add.max(0.0);
        }
        Ok(alpha)
    }

    /// Expands the per-column profile to one value per cell of a 2D
    /// mesh (damping constant across the width).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Absorber::damping_profile`].
    pub fn damping_profile_2d(&self, mesh: &Mesh, alpha_base: f64) -> Result<Vec<f64>, SimError> {
        let cols = self.damping_profile(mesh, alpha_base)?;
        let mut out = Vec::with_capacity(mesh.cell_count());
        for _ in 0..mesh.ny() {
            out.extend_from_slice(&cols);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::line(1.0e-6, 2.0e-9, 50.0e-9, 1.0e-9).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Absorber::new(0.0, 0.5).is_err());
        assert!(Absorber::new(1e-7, 0.0).is_err());
        assert!(Absorber::new(1e-7, 1.5).is_err());
        let a = Absorber::new(1e-7, 0.5).unwrap();
        assert!(a.damping_profile(&mesh(), 0.0).is_err());
        assert!(a.damping_profile(&mesh(), 1.0).is_err());
    }

    #[test]
    fn overlapping_absorbers_rejected() {
        let a = Absorber::new(600e-9, 0.5).unwrap();
        assert!(matches!(
            a.damping_profile(&mesh(), 0.004),
            Err(SimError::RegionOutOfBounds { .. })
        ));
    }

    #[test]
    fn profile_is_symmetric() {
        let a = Absorber::new(100e-9, 0.5).unwrap();
        let alpha = a.damping_profile(&mesh(), 0.004).unwrap();
        let n = alpha.len();
        for i in 0..n / 2 {
            assert!((alpha[i] - alpha[n - 1 - i]).abs() < 1e-15);
        }
    }

    #[test]
    fn profile_monotone_into_absorber() {
        let a = Absorber::new(100e-9, 0.5).unwrap();
        let alpha = a.damping_profile(&mesh(), 0.004).unwrap();
        // Damping decreases moving inward from the boundary.
        for i in 0..49 {
            assert!(alpha[i] >= alpha[i + 1], "profile not monotone at {i}");
        }
        // Interior untouched.
        assert_eq!(alpha[250], 0.004);
    }

    #[test]
    fn boundary_value_near_alpha_max() {
        let a = Absorber::new(100e-9, 0.7).unwrap();
        let alpha = a.damping_profile(&mesh(), 0.004).unwrap();
        assert!((alpha[0] - 0.7).abs() < 0.03);
    }

    #[test]
    fn quadratic_shape() {
        let a = Absorber::new(100e-9, 0.504).unwrap();
        let alpha = a.damping_profile(&mesh(), 0.004).unwrap();
        // 50 absorber cells; half depth (cell 25) should carry ~1/4 of
        // the added damping.
        let added_mid = alpha[25] - 0.004;
        let added_edge = alpha[0] - 0.004;
        assert!((added_mid / added_edge - 0.25).abs() < 0.05);
    }

    #[test]
    fn profile_2d_replicates_rows() {
        let mesh = Mesh::plane(400e-9, 10e-9, 2e-9, 2e-9, 1e-9).unwrap();
        let a = Absorber::new(50e-9, 0.5).unwrap();
        let alpha = a.damping_profile_2d(&mesh, 0.004).unwrap();
        assert_eq!(alpha.len(), mesh.cell_count());
        let nx = mesh.nx();
        for j in 1..mesh.ny() {
            for i in 0..nx {
                assert_eq!(alpha[j * nx + i], alpha[i]);
            }
        }
    }
}
