//! Explicit ODE integrators.
//!
//! The micromagnetic solver integrates the Landau–Lifshitz–Gilbert
//! equation with the classic fixed-step RK4 scheme; the adaptive
//! Dormand–Prince integrator is provided for macrospin studies where the
//! step size is not dictated by exchange stiffness.

use crate::error::MathError;

/// A first-order ODE system `dy/dt = f(t, y)` over a flat state vector.
///
/// Implementors fill `dydt` rather than allocating, so integrators can
/// run allocation-free in their inner loop.
///
/// # Examples
///
/// ```
/// use magnon_math::integrate::{OdeSystem, Rk4};
///
/// /// dy/dt = -y  (exponential decay)
/// struct Decay;
/// impl OdeSystem for Decay {
///     fn dim(&self) -> usize { 1 }
///     fn eval(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
///         dydt[0] = -y[0];
///     }
/// }
///
/// # fn main() -> Result<(), magnon_math::MathError> {
/// let mut y = vec![1.0];
/// let mut stepper = Rk4::new(1)?;
/// let mut t = 0.0;
/// while t < 1.0 {
///     stepper.step(&Decay, t, &mut y, 1e-3);
///     t += 1e-3;
/// }
/// assert!((y[0] - (-1.0f64).exp()).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub trait OdeSystem {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;
    /// Writes `f(t, y)` into `dydt` (`dydt.len() == y.len() == dim`).
    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]);
}

/// Fixed-step fourth-order Runge–Kutta integrator with reusable
/// work buffers.
#[derive(Debug, Clone)]
pub struct Rk4 {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
}

impl Rk4 {
    /// Creates an integrator for systems of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::EmptyInput`] for `dim == 0`.
    pub fn new(dim: usize) -> Result<Self, MathError> {
        if dim == 0 {
            return Err(MathError::EmptyInput);
        }
        Ok(Rk4 {
            k1: vec![0.0; dim],
            k2: vec![0.0; dim],
            k3: vec![0.0; dim],
            k4: vec![0.0; dim],
            tmp: vec![0.0; dim],
        })
    }

    /// Advances `y` in place from `t` to `t + dt`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the dimension the integrator was
    /// constructed with.
    pub fn step<S: OdeSystem>(&mut self, system: &S, t: f64, y: &mut [f64], dt: f64) {
        let n = self.k1.len();
        assert_eq!(y.len(), n, "state dimension mismatch");
        system.eval(t, y, &mut self.k1);
        for (tmp, (&y_i, &k)) in self.tmp.iter_mut().zip(y.iter().zip(&self.k1)) {
            *tmp = y_i + 0.5 * dt * k;
        }
        system.eval(t + 0.5 * dt, &self.tmp, &mut self.k2);
        for (tmp, (&y_i, &k)) in self.tmp.iter_mut().zip(y.iter().zip(&self.k2)) {
            *tmp = y_i + 0.5 * dt * k;
        }
        system.eval(t + 0.5 * dt, &self.tmp, &mut self.k3);
        for (tmp, (&y_i, &k)) in self.tmp.iter_mut().zip(y.iter().zip(&self.k3)) {
            *tmp = y_i + dt * k;
        }
        system.eval(t + dt, &self.tmp, &mut self.k4);
        for (i, y_i) in y.iter_mut().enumerate() {
            *y_i += dt / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.k4[i]);
        }
    }
}

/// Second-order Heun (explicit trapezoidal) integrator.
///
/// Half the field evaluations of RK4 per step; used where speed matters
/// more than fourth-order accuracy.
#[derive(Debug, Clone)]
pub struct Heun {
    k1: Vec<f64>,
    k2: Vec<f64>,
    tmp: Vec<f64>,
}

impl Heun {
    /// Creates an integrator for systems of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::EmptyInput`] for `dim == 0`.
    pub fn new(dim: usize) -> Result<Self, MathError> {
        if dim == 0 {
            return Err(MathError::EmptyInput);
        }
        Ok(Heun {
            k1: vec![0.0; dim],
            k2: vec![0.0; dim],
            tmp: vec![0.0; dim],
        })
    }

    /// Advances `y` in place from `t` to `t + dt`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the constructed dimension.
    pub fn step<S: OdeSystem>(&mut self, system: &S, t: f64, y: &mut [f64], dt: f64) {
        let n = self.k1.len();
        assert_eq!(y.len(), n, "state dimension mismatch");
        system.eval(t, y, &mut self.k1);
        for (tmp, (&y_i, &k)) in self.tmp.iter_mut().zip(y.iter().zip(&self.k1)) {
            *tmp = y_i + dt * k;
        }
        system.eval(t + dt, &self.tmp, &mut self.k2);
        for (i, y_i) in y.iter_mut().enumerate() {
            *y_i += 0.5 * dt * (self.k1[i] + self.k2[i]);
        }
    }
}

/// Outcome of an adaptive integration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveStats {
    /// Number of accepted steps.
    pub accepted: usize,
    /// Number of rejected (retried) steps.
    pub rejected: usize,
    /// Final step size.
    pub final_dt: f64,
}

/// Adaptive Dormand–Prince 5(4) integrator.
#[derive(Debug, Clone)]
pub struct DormandPrince {
    /// Relative error tolerance per step.
    pub rel_tol: f64,
    /// Absolute error tolerance per step.
    pub abs_tol: f64,
    /// Hard cap on total accepted + rejected steps.
    pub max_steps: usize,
}

impl Default for DormandPrince {
    fn default() -> Self {
        DormandPrince {
            rel_tol: 1e-8,
            abs_tol: 1e-10,
            max_steps: 1_000_000,
        }
    }
}

impl DormandPrince {
    /// Integrates `y` from `t0` to `t1` with adaptive step size,
    /// starting from an initial guess `dt0`.
    ///
    /// # Errors
    ///
    /// * [`MathError::InvalidScale`] if `t1 <= t0` or `dt0` is not
    ///   positive.
    /// * [`MathError::NoConvergence`] if `max_steps` is exhausted.
    pub fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        t0: f64,
        t1: f64,
        y: &mut [f64],
        dt0: f64,
    ) -> Result<AdaptiveStats, MathError> {
        if t1.partial_cmp(&t0) != Some(std::cmp::Ordering::Greater) {
            return Err(MathError::InvalidScale {
                name: "t1 - t0",
                value: t1 - t0,
            });
        }
        if !(dt0.is_finite() && dt0 > 0.0) {
            return Err(MathError::InvalidScale {
                name: "dt0",
                value: dt0,
            });
        }
        let n = y.len();
        let mut k = vec![vec![0.0; n]; 7];
        let mut tmp = vec![0.0; n];
        let mut y5 = vec![0.0; n];
        let mut y4 = vec![0.0; n];

        // Dormand–Prince Butcher tableau.
        const A: [[f64; 6]; 6] = [
            [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
            [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
            [
                19372.0 / 6561.0,
                -25360.0 / 2187.0,
                64448.0 / 6561.0,
                -212.0 / 729.0,
                0.0,
                0.0,
            ],
            [
                9017.0 / 3168.0,
                -355.0 / 33.0,
                46732.0 / 5247.0,
                49.0 / 176.0,
                -5103.0 / 18656.0,
                0.0,
            ],
            [
                35.0 / 384.0,
                0.0,
                500.0 / 1113.0,
                125.0 / 192.0,
                -2187.0 / 6784.0,
                11.0 / 84.0,
            ],
        ];
        const C: [f64; 6] = [0.2, 0.3, 0.8, 8.0 / 9.0, 1.0, 1.0];
        const B5: [f64; 7] = [
            35.0 / 384.0,
            0.0,
            500.0 / 1113.0,
            125.0 / 192.0,
            -2187.0 / 6784.0,
            11.0 / 84.0,
            0.0,
        ];
        const B4: [f64; 7] = [
            5179.0 / 57600.0,
            0.0,
            7571.0 / 16695.0,
            393.0 / 640.0,
            -92097.0 / 339200.0,
            187.0 / 2100.0,
            1.0 / 40.0,
        ];

        let mut t = t0;
        let mut dt = dt0.min(t1 - t0);
        let mut stats = AdaptiveStats {
            accepted: 0,
            rejected: 0,
            final_dt: dt,
        };

        while t < t1 {
            if stats.accepted + stats.rejected >= self.max_steps {
                return Err(MathError::NoConvergence {
                    iterations: self.max_steps,
                });
            }
            dt = dt.min(t1 - t);
            system.eval(t, y, &mut k[0]);
            for s in 0..6 {
                for i in 0..n {
                    let mut acc = 0.0;
                    for (j, a) in A[s].iter().enumerate().take(s + 1) {
                        acc += a * k[j][i];
                    }
                    tmp[i] = y[i] + dt * acc;
                }
                system.eval(t + C[s] * dt, &tmp, &mut k[s + 1]);
            }
            let mut err_norm = 0.0f64;
            for i in 0..n {
                let mut acc5 = 0.0;
                let mut acc4 = 0.0;
                for s in 0..7 {
                    acc5 += B5[s] * k[s][i];
                    acc4 += B4[s] * k[s][i];
                }
                y5[i] = y[i] + dt * acc5;
                y4[i] = y[i] + dt * acc4;
                let scale = self.abs_tol + self.rel_tol * y5[i].abs().max(y[i].abs());
                let e = (y5[i] - y4[i]) / scale;
                err_norm += e * e;
            }
            err_norm = (err_norm / n as f64).sqrt();
            if err_norm <= 1.0 {
                t += dt;
                y.copy_from_slice(&y5);
                stats.accepted += 1;
            } else {
                stats.rejected += 1;
            }
            let factor = if err_norm > 0.0 {
                0.9 * err_norm.powf(-0.2)
            } else {
                5.0
            };
            dt *= factor.clamp(0.2, 5.0);
            stats.final_dt = dt;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Decay {
        rate: f64,
    }

    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn eval(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
            dydt[0] = -self.rate * y[0];
        }
    }

    /// Harmonic oscillator: y = (q, p), H = (q² + p²)/2.
    struct Oscillator {
        omega: f64,
    }

    impl OdeSystem for Oscillator {
        fn dim(&self) -> usize {
            2
        }
        fn eval(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
            dydt[0] = y[1];
            dydt[1] = -self.omega * self.omega * y[0];
        }
    }

    #[test]
    fn rk4_rejects_zero_dim() {
        assert!(Rk4::new(0).is_err());
        assert!(Heun::new(0).is_err());
    }

    #[test]
    fn rk4_exponential_decay_fourth_order() {
        let sys = Decay { rate: 1.0 };
        let run = |dt: f64| {
            let mut y = vec![1.0];
            let mut rk = Rk4::new(1).unwrap();
            let steps = (1.0 / dt).round() as usize;
            for s in 0..steps {
                rk.step(&sys, s as f64 * dt, &mut y, dt);
            }
            (y[0] - (-1.0f64).exp()).abs()
        };
        let e1 = run(0.01);
        let e2 = run(0.02);
        // Fourth order: halving dt reduces error by ~16x.
        assert!(e2 / e1 > 10.0, "e1={e1}, e2={e2}");
        assert!(e1 < 1e-9);
    }

    #[test]
    fn heun_second_order() {
        let sys = Decay { rate: 1.0 };
        let run = |dt: f64| {
            let mut y = vec![1.0];
            let mut h = Heun::new(1).unwrap();
            let steps = (1.0 / dt).round() as usize;
            for s in 0..steps {
                h.step(&sys, s as f64 * dt, &mut y, dt);
            }
            (y[0] - (-1.0f64).exp()).abs()
        };
        let e1 = run(0.005);
        let e2 = run(0.01);
        assert!(e2 / e1 > 3.0, "e1={e1}, e2={e2}");
    }

    #[test]
    fn rk4_oscillator_preserves_energy() {
        let sys = Oscillator {
            omega: 2.0 * std::f64::consts::PI,
        };
        let mut y = vec![1.0, 0.0];
        let mut rk = Rk4::new(2).unwrap();
        let dt = 1e-3;
        for s in 0..10_000 {
            rk.step(&sys, s as f64 * dt, &mut y, dt);
        }
        let energy = (y[0] * y[0] * sys.omega * sys.omega + y[1] * y[1]) / 2.0;
        let initial = sys.omega * sys.omega / 2.0;
        assert!((energy - initial).abs() / initial < 1e-6);
    }

    #[test]
    fn rk4_oscillator_period() {
        // One full period returns to the initial state.
        let sys = Oscillator { omega: 1.0 };
        let mut y = vec![1.0, 0.0];
        let mut rk = Rk4::new(2).unwrap();
        let period = 2.0 * std::f64::consts::PI;
        let steps = 10_000usize;
        let dt = period / steps as f64;
        for s in 0..steps {
            rk.step(&sys, s as f64 * dt, &mut y, dt);
        }
        assert!((y[0] - 1.0).abs() < 1e-8);
        assert!(y[1].abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "state dimension mismatch")]
    fn rk4_panics_on_dim_mismatch() {
        let sys = Decay { rate: 1.0 };
        let mut y = vec![1.0, 2.0];
        let mut rk = Rk4::new(1).unwrap();
        rk.step(&sys, 0.0, &mut y, 0.1);
    }

    #[test]
    fn dormand_prince_decay() {
        let sys = Decay { rate: 3.0 };
        let mut y = vec![2.0];
        let dp = DormandPrince::default();
        let stats = dp.integrate(&sys, 0.0, 1.0, &mut y, 0.1).unwrap();
        assert!((y[0] - 2.0 * (-3.0f64).exp()).abs() < 1e-7);
        assert!(stats.accepted > 0);
    }

    #[test]
    fn dormand_prince_adapts_step() {
        let sys = Oscillator { omega: 50.0 };
        let mut y = vec![1.0, 0.0];
        let dp = DormandPrince {
            rel_tol: 1e-9,
            abs_tol: 1e-12,
            max_steps: 100_000,
        };
        let stats = dp.integrate(&sys, 0.0, 1.0, &mut y, 0.5).unwrap();
        // The initial dt=0.5 is far too large for ω=50; rejections expected.
        assert!(stats.rejected > 0);
        let expect_q = (50.0f64).cos();
        assert!((y[0] - expect_q).abs() < 1e-6);
    }

    #[test]
    fn dormand_prince_validates_interval() {
        let sys = Decay { rate: 1.0 };
        let mut y = vec![1.0];
        let dp = DormandPrince::default();
        assert!(dp.integrate(&sys, 1.0, 0.0, &mut y, 0.1).is_err());
        assert!(dp.integrate(&sys, 0.0, 1.0, &mut y, 0.0).is_err());
    }

    #[test]
    fn dormand_prince_step_budget() {
        let sys = Oscillator { omega: 1000.0 };
        let mut y = vec![1.0, 0.0];
        let dp = DormandPrince {
            rel_tol: 1e-13,
            abs_tol: 1e-14,
            max_steps: 10,
        };
        assert!(matches!(
            dp.integrate(&sys, 0.0, 100.0, &mut y, 1e-6),
            Err(MathError::NoConvergence { iterations: 10 })
        ));
    }
}
