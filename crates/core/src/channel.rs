//! Frequency-channel allocation.
//!
//! Each of the `n` parallel data sets rides on its own frequency. A
//! [`ChannelPlan`] resolves those frequencies against a dispersion
//! relation into wavelengths, wavenumbers, group velocities and
//! attenuation lengths — everything the layout solver and the analytic
//! engine need.

use crate::error::GateError;
use magnon_physics::damping::DampingModel;
use magnon_physics::dispersion::{DispersionRelation, ExchangeDispersion, KalinikosSlavinFvmsw};
use magnon_physics::waveguide::Waveguide;
use serde::{Deserialize, Serialize};

/// Which dispersion branch the gate designer uses.
///
/// `Exchange` matches the `magnon-micromag` simulator exactly (use it
/// when validating micromagnetically); `KalinikosSlavin` is the paper's
/// forward-volume branch with the thickness correction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispersionModel {
    /// Local-demag exchange branch (simulator-exact).
    #[default]
    Exchange,
    /// Kalinikos–Slavin forward-volume branch ("paper mode").
    KalinikosSlavin,
}

/// A concrete dispersion instance built from a [`Waveguide`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dispersion {
    /// Exchange branch.
    Exchange(ExchangeDispersion),
    /// Kalinikos–Slavin branch.
    KalinikosSlavin(KalinikosSlavinFvmsw),
}

impl Dispersion {
    /// Builds the selected branch for `waveguide`.
    ///
    /// # Errors
    ///
    /// Propagates [`magnon_physics::PhysicsError`] construction failures
    /// (e.g. in-plane material).
    pub fn for_waveguide(model: DispersionModel, waveguide: &Waveguide) -> Result<Self, GateError> {
        Ok(match model {
            DispersionModel::Exchange => Dispersion::Exchange(waveguide.exchange_dispersion()?),
            DispersionModel::KalinikosSlavin => {
                Dispersion::KalinikosSlavin(waveguide.kalinikos_slavin_dispersion()?)
            }
        })
    }
}

impl DispersionRelation for Dispersion {
    fn frequency(&self, k: f64) -> f64 {
        match self {
            Dispersion::Exchange(d) => d.frequency(k),
            Dispersion::KalinikosSlavin(d) => d.frequency(k),
        }
    }

    fn wavenumber(&self, frequency: f64) -> Result<f64, magnon_physics::PhysicsError> {
        match self {
            Dispersion::Exchange(d) => d.wavenumber(frequency),
            Dispersion::KalinikosSlavin(d) => d.wavenumber(frequency),
        }
    }

    fn group_velocity(&self, k: f64) -> f64 {
        match self {
            Dispersion::Exchange(d) => d.group_velocity(k),
            Dispersion::KalinikosSlavin(d) => d.group_velocity(k),
        }
    }
}

/// One frequency channel with its resolved wave parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyChannel {
    /// Channel index (bit position in data words).
    pub index: usize,
    /// Carrier frequency in Hz.
    pub frequency: f64,
    /// Wavelength in metres.
    pub wavelength: f64,
    /// Wavenumber in rad/m.
    pub wavenumber: f64,
    /// Group velocity in m/s.
    pub group_velocity: f64,
    /// Amplitude attenuation length in metres.
    pub attenuation_length: f64,
}

/// The ordered set of frequency channels of a gate.
///
/// # Examples
///
/// ```
/// use magnon_core::channel::{ChannelPlan, DispersionModel};
/// use magnon_physics::waveguide::Waveguide;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let guide = Waveguide::paper_default()?;
/// let plan = ChannelPlan::uniform(&guide, DispersionModel::Exchange, 8, 10.0e9, 10.0e9)?;
/// assert_eq!(plan.len(), 8);
/// // Wavelength decreases with channel frequency.
/// assert!(plan.channels()[0].wavelength > plan.channels()[7].wavelength);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelPlan {
    channels: Vec<FrequencyChannel>,
    dispersion: Dispersion,
    fmr: f64,
}

impl ChannelPlan {
    /// Allocates `count` channels at `f_start, f_start + f_step, …` on
    /// the chosen dispersion branch of `waveguide` (the paper: 8
    /// channels, 10 GHz start, 10 GHz step).
    ///
    /// # Errors
    ///
    /// * [`GateError::InvalidParameter`] for `count == 0` or
    ///   non-positive frequencies.
    /// * [`GateError::BadChannelFrequency`] when a channel falls at or
    ///   below the waveguide's FMR.
    pub fn uniform(
        waveguide: &Waveguide,
        model: DispersionModel,
        count: usize,
        f_start: f64,
        f_step: f64,
    ) -> Result<Self, GateError> {
        if count == 0 {
            return Err(GateError::InvalidParameter {
                parameter: "channel_count",
                value: 0.0,
            });
        }
        if !(f_start.is_finite() && f_start > 0.0) {
            return Err(GateError::InvalidParameter {
                parameter: "f_start",
                value: f_start,
            });
        }
        if !(f_step.is_finite() && f_step > 0.0) {
            return Err(GateError::InvalidParameter {
                parameter: "f_step",
                value: f_step,
            });
        }
        let freqs: Vec<f64> = (0..count).map(|i| f_start + i as f64 * f_step).collect();
        ChannelPlan::from_frequencies(waveguide, model, &freqs)
    }

    /// Allocates channels at explicit frequencies (must be strictly
    /// increasing).
    ///
    /// # Errors
    ///
    /// * [`GateError::InvalidParameter`] for an empty list.
    /// * [`GateError::BadChannelFrequency`] for non-increasing entries
    ///   or frequencies at or below FMR.
    pub fn from_frequencies(
        waveguide: &Waveguide,
        model: DispersionModel,
        frequencies: &[f64],
    ) -> Result<Self, GateError> {
        if frequencies.is_empty() {
            return Err(GateError::InvalidParameter {
                parameter: "channel_count",
                value: 0.0,
            });
        }
        let dispersion = Dispersion::for_waveguide(model, waveguide)?;
        let fmr = dispersion.fmr_frequency();
        let damping = DampingModel::new(waveguide.material().gilbert_damping())?;
        let mut channels = Vec::with_capacity(frequencies.len());
        let mut last = 0.0;
        for (index, &frequency) in frequencies.iter().enumerate() {
            if frequency <= last {
                return Err(GateError::BadChannelFrequency {
                    frequency,
                    reason: "channel frequencies must be strictly increasing",
                });
            }
            last = frequency;
            if frequency <= fmr {
                return Err(GateError::BadChannelFrequency {
                    frequency,
                    reason: "at or below the ferromagnetic resonance",
                });
            }
            let wavenumber = dispersion.wavenumber(frequency)?;
            channels.push(FrequencyChannel {
                index,
                frequency,
                wavelength: 2.0 * std::f64::consts::PI / wavenumber,
                wavenumber,
                group_velocity: dispersion.group_velocity(wavenumber),
                attenuation_length: damping.attenuation_length(&dispersion, frequency)?,
            });
        }
        Ok(ChannelPlan {
            channels,
            dispersion,
            fmr,
        })
    }

    /// The channels in index order.
    pub fn channels(&self) -> &[FrequencyChannel] {
        &self.channels
    }

    /// The channel at `index`, bounds-checked.
    ///
    /// The evaluation hot paths use this instead of raw indexing so a
    /// caller-supplied out-of-range channel surfaces as a [`GateError`]
    /// rather than a panic.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for `index >= len()`.
    pub fn channel(&self, index: usize) -> Result<&FrequencyChannel, GateError> {
        self.channels.get(index).ok_or(GateError::InvalidParameter {
            parameter: "channel_index",
            value: index as f64,
        })
    }

    /// Number of channels (the gate's word width `n`).
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// `true` when the plan holds no channels (never for a constructed
    /// plan).
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// The dispersion the plan was built on.
    pub fn dispersion(&self) -> &Dispersion {
        &self.dispersion
    }

    /// FMR floor of the waveguide in Hz.
    pub fn fmr_frequency(&self) -> f64 {
        self.fmr
    }

    /// The channel frequencies in Hz.
    pub fn frequencies(&self) -> Vec<f64> {
        self.channels.iter().map(|c| c.frequency).collect()
    }

    /// Shortest wavelength across channels (sets mesh resolution).
    pub fn min_wavelength(&self) -> f64 {
        self.channels
            .iter()
            .map(|c| c.wavelength)
            .fold(f64::INFINITY, f64::min)
    }

    /// Highest channel frequency in Hz (sets the sampling rate).
    pub fn max_frequency(&self) -> f64 {
        self.channels
            .iter()
            .map(|c| c.frequency)
            .fold(0.0, f64::max)
    }

    /// The occupied band as `(lowest, highest)` channel frequency in
    /// Hz. Channels are stored in strictly increasing frequency order,
    /// so this is the first and last entry.
    pub fn band(&self) -> (f64, f64) {
        (
            self.channels.first().map_or(0.0, |c| c.frequency),
            self.channels.last().map_or(0.0, |c| c.frequency),
        )
    }

    /// Carrier frequency of the plan: the spectral centre of the
    /// occupied band, in Hz. This is what a frequency lane reports as
    /// its carrier (see [`crate::gate::FrequencyLane`]).
    pub fn carrier_frequency(&self) -> f64 {
        let (low, high) = self.band();
        0.5 * (low + high)
    }

    /// `true` when this plan's band overlaps `other`'s. Overlapping
    /// plans cannot ride the same waveguide as separate frequency
    /// lanes — their channels would interfere.
    pub fn overlaps(&self, other: &ChannelPlan) -> bool {
        let (a_low, a_high) = self.band();
        let (b_low, b_high) = other.band();
        a_low <= b_high && b_low <= a_high
    }

    /// Smallest spectral gap in Hz between any channel of this plan and
    /// any channel of `other` — the guard band two frequency lanes keep
    /// between each other. Zero (or tiny) means the lanes collide.
    pub fn guard_band_to(&self, other: &ChannelPlan) -> f64 {
        let mut gap = f64::INFINITY;
        for a in &self.channels {
            for b in &other.channels {
                gap = gap.min((a.frequency - b.frequency).abs());
            }
        }
        gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_math::constants::{GHZ, NM};

    fn guide() -> Waveguide {
        Waveguide::paper_default().unwrap()
    }

    #[test]
    fn paper_plan_allocates_eight_channels() {
        let plan = ChannelPlan::uniform(
            &guide(),
            DispersionModel::Exchange,
            8,
            10.0 * GHZ,
            10.0 * GHZ,
        )
        .unwrap();
        assert_eq!(plan.len(), 8);
        assert_eq!(plan.frequencies()[7], 80.0 * GHZ);
        assert!(plan.min_wavelength() > 10.0 * NM);
        assert_eq!(plan.max_frequency(), 80.0 * GHZ);
    }

    #[test]
    fn wavelengths_strictly_decreasing() {
        let plan = ChannelPlan::uniform(
            &guide(),
            DispersionModel::Exchange,
            8,
            10.0 * GHZ,
            10.0 * GHZ,
        )
        .unwrap();
        for pair in plan.channels().windows(2) {
            assert!(pair[0].wavelength > pair[1].wavelength);
            assert!(pair[0].wavenumber < pair[1].wavenumber);
        }
    }

    #[test]
    fn channel_below_fmr_rejected() {
        // FMR of the 50 nm guide is ~4.9 GHz; 1 GHz start must fail.
        let e = ChannelPlan::uniform(
            &guide(),
            DispersionModel::Exchange,
            4,
            1.0 * GHZ,
            10.0 * GHZ,
        );
        assert!(matches!(e, Err(GateError::BadChannelFrequency { .. })));
    }

    #[test]
    fn parameter_validation() {
        assert!(ChannelPlan::uniform(
            &guide(),
            DispersionModel::Exchange,
            0,
            10.0 * GHZ,
            10.0 * GHZ
        )
        .is_err());
        assert!(
            ChannelPlan::uniform(&guide(), DispersionModel::Exchange, 4, -1.0, 10.0 * GHZ).is_err()
        );
        assert!(
            ChannelPlan::uniform(&guide(), DispersionModel::Exchange, 4, 10.0 * GHZ, 0.0).is_err()
        );
    }

    #[test]
    fn explicit_frequencies_must_increase() {
        let e = ChannelPlan::from_frequencies(
            &guide(),
            DispersionModel::Exchange,
            &[10.0 * GHZ, 10.0 * GHZ],
        );
        assert!(matches!(e, Err(GateError::BadChannelFrequency { .. })));
        assert!(ChannelPlan::from_frequencies(&guide(), DispersionModel::Exchange, &[]).is_err());
    }

    #[test]
    fn kalinikos_slavin_gives_longer_wavelengths() {
        // At fixed f, the KS branch (higher ω at fixed k) yields smaller
        // k, i.e. longer wavelengths, than the exchange branch.
        let pe = ChannelPlan::uniform(
            &guide(),
            DispersionModel::Exchange,
            3,
            10.0 * GHZ,
            10.0 * GHZ,
        )
        .unwrap();
        let pk = ChannelPlan::uniform(
            &guide(),
            DispersionModel::KalinikosSlavin,
            3,
            10.0 * GHZ,
            10.0 * GHZ,
        )
        .unwrap();
        for (a, b) in pe.channels().iter().zip(pk.channels()) {
            assert!(b.wavelength > a.wavelength);
        }
    }

    #[test]
    fn attenuation_lengths_positive_and_finite() {
        let plan = ChannelPlan::uniform(
            &guide(),
            DispersionModel::Exchange,
            8,
            10.0 * GHZ,
            10.0 * GHZ,
        )
        .unwrap();
        for c in plan.channels() {
            assert!(c.attenuation_length.is_finite());
            assert!(c.attenuation_length > 100.0 * NM);
            assert!(c.group_velocity > 0.0);
        }
    }

    #[test]
    fn indices_match_positions() {
        let plan = ChannelPlan::uniform(
            &guide(),
            DispersionModel::Exchange,
            5,
            12.0 * GHZ,
            7.0 * GHZ,
        )
        .unwrap();
        for (i, c) in plan.channels().iter().enumerate() {
            assert_eq!(c.index, i);
            assert!((c.frequency - (12.0 * GHZ + i as f64 * 7.0 * GHZ)).abs() < 1.0);
        }
    }
}
