//! Engine throughput: analytic gate evaluations per second versus
//! channel count, plus the raw LLG solver step cost that dominates the
//! micromagnetic validation path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use magnon_core::gate::ParallelGateBuilder;
use magnon_core::word::Word;
use magnon_micromag::field::{Exchange, LocalDemag, UniaxialAnisotropy};
use magnon_micromag::mesh::Mesh;
use magnon_micromag::solver::LlgSolver;
use magnon_micromag::stability::suggested_time_step;
use magnon_physics::material::Material;
use magnon_physics::waveguide::Waveguide;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(30);

    let guide = Waveguide::paper_default().expect("waveguide");
    for n in [2usize, 4, 8, 16] {
        let gate = ParallelGateBuilder::new(guide)
            .channels(n)
            .inputs(3)
            .frequency_step(5.0e9)
            .build()
            .expect("gate");
        let words = vec![Word::zeros(n).expect("word"); 3];
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("evaluate_{n}_channels"), |b| {
            b.iter(|| gate.evaluate(black_box(&words)).expect("evaluate"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("llg_solver");
    group.sample_size(20);
    let material = Material::fe_co_b();
    for cells in [250usize, 500, 1000] {
        let mesh = Mesh::line(cells as f64 * 2.0e-9, 2.0e-9, 50.0e-9, 1.0e-9).expect("mesh");
        let dt = suggested_time_step(&mesh, &material);
        let mut solver = LlgSolver::new(mesh, material).expect("solver");
        solver.add_field_term(Box::new(Exchange::new(&material)));
        solver.add_field_term(Box::new(
            UniaxialAnisotropy::perpendicular(&material).expect("anisotropy"),
        ));
        solver.add_field_term(Box::new(
            LocalDemag::out_of_plane(&material, 1.0).expect("demag"),
        ));
        group.throughput(Throughput::Elements(cells as u64));
        group.bench_function(format!("rk4_step_{cells}_cells"), |b| {
            b.iter(|| {
                solver.step(black_box(dt));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
