//! Input-energy schedules and scalability analysis (paper §V).
//!
//! Damping attenuates a wave by `e^{−Δx/L}` on its way to the detector,
//! so sources farther from the output arrive weaker. The paper's remedy:
//! excite far inputs harder, `E(I_1) > E(I_2) > … > E(I_m)` (input 1 is
//! placed farthest). [`EnergySchedule::equalizing`] computes exactly the
//! amplitude set that makes all arrivals equal, and
//! [`scalability_sweep`] reports how the required amplitude spread and
//! gate span grow with the channel count.

use crate::channel::{ChannelPlan, DispersionModel};
use crate::encoding::ReadoutMode;
use crate::error::GateError;
use crate::inline::{InlineLayout, LayoutSpec};
use magnon_physics::waveguide::Waveguide;

/// Excitation amplitudes per `(input, channel)` pair, normalised so the
/// weakest source drives at 1.0.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergySchedule {
    /// `amplitudes[channel][input]`.
    amplitudes: Vec<Vec<f64>>,
}

impl EnergySchedule {
    /// A flat schedule: every source drives at amplitude 1.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] on channel/layout
    /// disagreement (cannot occur for a layout solved from `plan`).
    pub fn flat(plan: &ChannelPlan, layout: &InlineLayout) -> Result<Self, GateError> {
        check_consistent(plan, layout)?;
        Ok(EnergySchedule {
            amplitudes: vec![vec![1.0; layout.input_count()]; plan.len()],
        })
    }

    /// The damping-compensating schedule: source `(c, j)` drives at
    /// `e^{Δx/L_c}` relative to the detector-adjacent reference, so all
    /// same-channel waves arrive with equal amplitude.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EnergySchedule::flat`].
    pub fn equalizing(plan: &ChannelPlan, layout: &InlineLayout) -> Result<Self, GateError> {
        check_consistent(plan, layout)?;
        let m = layout.input_count();
        let mut amplitudes = Vec::with_capacity(plan.len());
        for (c, ch) in plan.channels().iter().enumerate() {
            let det = layout.detector_position(c)?;
            let mut per_input = Vec::with_capacity(m);
            for j in 0..m {
                let src = layout.source_position(c, j)?;
                let decay = (-(det - src) / ch.attenuation_length).exp();
                per_input.push(1.0 / decay);
            }
            // Normalise: weakest drive = 1.0.
            let min = per_input.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            for a in &mut per_input {
                *a /= min;
            }
            amplitudes.push(per_input);
        }
        Ok(EnergySchedule { amplitudes })
    }

    /// Amplitudes for channel `c`, indexed by input `j`.
    ///
    /// # Panics
    ///
    /// Panics for a channel index outside the gate (schedules are only
    /// obtainable consistent with their gate).
    pub fn amplitudes_for_channel(&self, channel: usize) -> &[f64] {
        &self.amplitudes[channel]
    }

    /// Number of channels covered.
    pub fn channel_count(&self) -> usize {
        self.amplitudes.len()
    }

    /// The largest amplitude anywhere in the schedule — the transducer
    /// dynamic range the gate demands (1.0 for a flat schedule).
    pub fn max_amplitude(&self) -> f64 {
        self.amplitudes
            .iter()
            .flat_map(|v| v.iter())
            .fold(0.0f64, |a, &b| a.max(b))
    }

    /// `true` when far inputs drive at least as hard as near inputs on
    /// every channel (the paper's `E(I_n) < E(I_{n−1}) < …` ordering;
    /// input 0 is placed farthest).
    pub fn is_monotone_decreasing(&self) -> bool {
        self.amplitudes
            .iter()
            .all(|per_input| per_input.windows(2).all(|w| w[0] >= w[1] - 1e-12))
    }
}

fn check_consistent(plan: &ChannelPlan, layout: &InlineLayout) -> Result<(), GateError> {
    if plan.len() != layout.channel_count() {
        return Err(GateError::InvalidParameter {
            parameter: "channel_count",
            value: layout.channel_count() as f64,
        });
    }
    Ok(())
}

/// One row of the scalability study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalabilityPoint {
    /// Channel count `n`.
    pub channels: usize,
    /// Gate span along the guide in metres.
    pub span: f64,
    /// Worst single-trip amplitude decay across sources (min over
    /// channels of `e^{−Δx/L}` for the farthest source).
    pub worst_decay: f64,
    /// Required drive-amplitude spread (max/min) of the equalising
    /// schedule.
    pub amplitude_spread: f64,
}

/// Sweeps the channel count and reports span, decay and the required
/// input-energy spread — the quantitative version of the paper's §V
/// scalability discussion.
///
/// # Errors
///
/// Propagates channel-allocation and layout errors (e.g. when `f_step`
/// pushes channels into unusable territory).
///
/// # Examples
///
/// ```
/// use magnon_core::scalability::scalability_sweep;
/// use magnon_physics::waveguide::Waveguide;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let guide = Waveguide::paper_default()?;
/// let points = scalability_sweep(&guide, 3, &[2, 4, 8], 10.0e9, 10.0e9)?;
/// assert_eq!(points.len(), 3);
/// // More channels -> longer gate -> more decay to compensate.
/// assert!(points[2].amplitude_spread >= points[0].amplitude_spread);
/// # Ok(())
/// # }
/// ```
pub fn scalability_sweep(
    waveguide: &Waveguide,
    input_count: usize,
    channel_counts: &[usize],
    f_start: f64,
    f_step: f64,
) -> Result<Vec<ScalabilityPoint>, GateError> {
    let mut points = Vec::with_capacity(channel_counts.len());
    for &n in channel_counts {
        let plan = ChannelPlan::uniform(waveguide, DispersionModel::Exchange, n, f_start, f_step)?;
        let layout = InlineLayout::solve(
            &plan,
            input_count,
            LayoutSpec::default(),
            &vec![ReadoutMode::Direct; n],
        )?;
        let schedule = EnergySchedule::equalizing(&plan, &layout)?;
        let mut worst_decay = f64::INFINITY;
        for (c, ch) in plan.channels().iter().enumerate() {
            let det = layout.detector_position(c)?;
            let far = layout.source_position(c, 0)?;
            worst_decay = worst_decay.min((-(det - far) / ch.attenuation_length).exp());
        }
        points.push(ScalabilityPoint {
            channels: n,
            span: layout.span(),
            worst_decay,
            amplitude_spread: schedule.max_amplitude(),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_math::constants::GHZ;

    fn setup(n: usize, m: usize) -> (ChannelPlan, InlineLayout) {
        let guide = Waveguide::paper_default().unwrap();
        let plan =
            ChannelPlan::uniform(&guide, DispersionModel::Exchange, n, 10.0 * GHZ, 10.0 * GHZ)
                .unwrap();
        let layout = InlineLayout::solve(
            &plan,
            m,
            LayoutSpec::default(),
            &vec![ReadoutMode::Direct; n],
        )
        .unwrap();
        (plan, layout)
    }

    #[test]
    fn flat_schedule_is_all_ones() {
        let (plan, layout) = setup(4, 3);
        let s = EnergySchedule::flat(&plan, &layout).unwrap();
        assert_eq!(s.channel_count(), 4);
        assert_eq!(s.max_amplitude(), 1.0);
        for c in 0..4 {
            assert!(s.amplitudes_for_channel(c).iter().all(|&a| a == 1.0));
        }
    }

    #[test]
    fn equalizing_schedule_orders_amplitudes_like_paper() {
        // E(I_1) > E(I_2) > E(I_3): input 0 (farthest) drives hardest.
        let (plan, layout) = setup(8, 3);
        let s = EnergySchedule::equalizing(&plan, &layout).unwrap();
        assert!(s.is_monotone_decreasing());
        for c in 0..8 {
            let a = s.amplitudes_for_channel(c);
            assert!(a[0] > a[1] && a[1] > a[2], "channel {c}: {a:?}");
            // Nearest source drives at the normalised minimum.
            assert!((a[2] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn equalizing_schedule_equalises_arrivals() {
        let (plan, layout) = setup(4, 3);
        let s = EnergySchedule::equalizing(&plan, &layout).unwrap();
        for (c, ch) in plan.channels().iter().enumerate() {
            let det = layout.detector_position(c).unwrap();
            let arrivals: Vec<f64> = (0..3)
                .map(|j| {
                    let src = layout.source_position(c, j).unwrap();
                    s.amplitudes_for_channel(c)[j] * (-(det - src) / ch.attenuation_length).exp()
                })
                .collect();
            for w in arrivals.windows(2) {
                assert!((w[0] - w[1]).abs() < 1e-9, "unequal arrivals: {arrivals:?}");
            }
        }
    }

    #[test]
    fn spread_is_modest_at_paper_scale() {
        // The byte gate is sub-micron; attenuation lengths are microns,
        // so the spread is small — consistent with the paper noting the
        // graded energies are only needed for large input counts.
        let (plan, layout) = setup(8, 3);
        let s = EnergySchedule::equalizing(&plan, &layout).unwrap();
        assert!(s.max_amplitude() < 2.0, "spread = {}", s.max_amplitude());
        assert!(s.max_amplitude() > 1.0);
    }

    #[test]
    fn sweep_monotone_in_channel_count() {
        let guide = Waveguide::paper_default().unwrap();
        let pts = scalability_sweep(&guide, 3, &[2, 4, 8, 12], 10.0 * GHZ, 5.0 * GHZ).unwrap();
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(w[1].span >= w[0].span, "span must grow with channels");
            assert!(
                w[1].amplitude_spread >= w[0].amplitude_spread - 1e-9,
                "spread must not shrink"
            );
        }
        for p in &pts {
            assert!(p.worst_decay > 0.0 && p.worst_decay <= 1.0);
        }
    }

    #[test]
    fn sweep_with_more_inputs_needs_more_compensation() {
        let guide = Waveguide::paper_default().unwrap();
        let p3 = scalability_sweep(&guide, 3, &[4], 10.0 * GHZ, 10.0 * GHZ).unwrap();
        let p5 = scalability_sweep(&guide, 5, &[4], 10.0 * GHZ, 10.0 * GHZ).unwrap();
        assert!(p5[0].amplitude_spread > p3[0].amplitude_spread);
        assert!(p5[0].span > p3[0].span);
    }

    #[test]
    fn inconsistent_plan_layout_rejected() {
        let (plan4, _) = setup(4, 3);
        let (_, layout2) = setup(2, 3);
        assert!(EnergySchedule::flat(&plan4, &layout2).is_err());
    }
}
