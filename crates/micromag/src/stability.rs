//! Explicit-integration stability estimates.
//!
//! The stiffest mode on a discrete exchange mesh is the checkerboard
//! mode with Laplacian eigenvalue `4/dx² (+ 4/dy²)`; its precession rate
//! bounds the stable RK4 step. [`suggested_time_step`] returns a step
//! with a comfortable safety margin, [`max_stable_time_step`] the
//! theoretical bound.

use crate::mesh::Mesh;
use magnon_math::constants::{GAMMA_E, MU_0};
use magnon_physics::material::Material;

/// Fastest precession rate (rad/s) supported by `mesh` for `material`,
/// bounded by the checkerboard exchange mode plus the static fields.
pub fn max_precession_rate(mesh: &Mesh, material: &Material) -> f64 {
    let mut lap_max = 4.0 / (mesh.dx() * mesh.dx());
    if mesh.ny() > 1 {
        lap_max += 4.0 / (mesh.dy() * mesh.dy());
    }
    let h_exchange = material.saturation_magnetization() * material.exchange_length_sq() * lap_max;
    let h_static = material.anisotropy_field() + material.saturation_magnetization();
    GAMMA_E * MU_0 * (h_exchange + h_static)
}

/// Largest explicitly stable RK4 step in seconds (linear stability limit
/// `|λ| dt ≤ 2.78` for purely imaginary eigenvalues).
pub fn max_stable_time_step(mesh: &Mesh, material: &Material) -> f64 {
    2.78 / max_precession_rate(mesh, material)
}

/// A safe default time step: 40% of the stability limit.
///
/// # Examples
///
/// ```
/// use magnon_micromag::mesh::Mesh;
/// use magnon_micromag::stability::suggested_time_step;
/// use magnon_physics::material::Material;
///
/// # fn main() -> Result<(), magnon_micromag::SimError> {
/// let mesh = Mesh::line(1.0e-6, 1.0e-9, 50.0e-9, 1.0e-9)?;
/// let dt = suggested_time_step(&mesh, &Material::fe_co_b());
/// assert!(dt > 1.0e-15 && dt < 1.0e-12);
/// # Ok(())
/// # }
/// ```
pub fn suggested_time_step(mesh: &Mesh, material: &Material) -> f64 {
    0.4 * max_stable_time_step(mesh, material)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_math::constants::NM;

    #[test]
    fn finer_mesh_needs_smaller_step() {
        let m = Material::fe_co_b();
        let coarse = Mesh::line(1.0e-6, 2.0 * NM, 50.0 * NM, 1.0 * NM).unwrap();
        let fine = Mesh::line(1.0e-6, 1.0 * NM, 50.0 * NM, 1.0 * NM).unwrap();
        assert!(suggested_time_step(&fine, &m) < suggested_time_step(&coarse, &m));
        // Quadratic scaling dominates at small dx: ratio close to 4.
        let ratio = suggested_time_step(&coarse, &m) / suggested_time_step(&fine, &m);
        assert!(ratio > 3.0 && ratio < 4.5, "ratio = {ratio}");
    }

    #[test]
    fn two_dimensional_meshes_are_stiffer() {
        let m = Material::fe_co_b();
        let line = Mesh::line(400e-9, 2.0 * NM, 50.0 * NM, 1.0 * NM).unwrap();
        let plane = Mesh::plane(400e-9, 50e-9, 2.0 * NM, 2.0 * NM, 1.0 * NM).unwrap();
        assert!(suggested_time_step(&plane, &m) < suggested_time_step(&line, &m));
    }

    #[test]
    fn magnitudes_for_paper_mesh() {
        // 1 nm cells, FeCoB: limit in the tens of femtoseconds.
        let m = Material::fe_co_b();
        let mesh = Mesh::line(1.0e-6, 1.0 * NM, 50.0 * NM, 1.0 * NM).unwrap();
        let dt = max_stable_time_step(&mesh, &m);
        assert!(dt > 5.0e-14 && dt < 2.0e-13, "dt = {dt}");
    }

    #[test]
    fn suggested_is_fraction_of_max() {
        let m = Material::fe_co_b();
        let mesh = Mesh::line(1.0e-6, 2.0 * NM, 50.0 * NM, 1.0 * NM).unwrap();
        assert!(
            (suggested_time_step(&mesh, &m) / max_stable_time_step(&mesh, &m) - 0.4).abs() < 1e-12
        );
    }
}
