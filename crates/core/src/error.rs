//! Error type for gate design and evaluation.

use magnon_math::MathError;
use magnon_micromag::SimError;
use magnon_physics::PhysicsError;
use std::fmt;

/// Errors produced while designing or evaluating data-parallel spin-wave
/// gates.
#[derive(Debug, Clone, PartialEq)]
pub enum GateError {
    /// A design parameter was out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// The channel count or input count is unsupported by the requested
    /// logic function (e.g. even-input majority, non-2-input XOR).
    UnsupportedFunction {
        /// Description of the constraint that was violated.
        reason: &'static str,
    },
    /// A requested channel frequency is unusable (below FMR, duplicate,
    /// or above the mesh Nyquist during validation).
    BadChannelFrequency {
        /// The frequency in Hz.
        frequency: f64,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// The layout solver could not place all transducers without
    /// overlap.
    LayoutCollision {
        /// Number of repair iterations attempted.
        attempts: usize,
    },
    /// A layout handed to the evaluation engine is internally
    /// inconsistent (e.g. a channel without its detector). Surfaced as
    /// an error by the backend API instead of panicking.
    MalformedLayout {
        /// The offending channel index.
        channel: usize,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// Word width does not match the gate's channel count.
    WordWidthMismatch {
        /// Expected width (channel count).
        expected: usize,
        /// Provided word width.
        actual: usize,
    },
    /// Wrong number of input words for this gate.
    InputCountMismatch {
        /// Expected input count `m`.
        expected: usize,
        /// Provided input count.
        actual: usize,
    },
    /// A word operation addressed a bit outside the word.
    BitIndexOutOfRange {
        /// Requested bit index.
        index: usize,
        /// Word width.
        width: usize,
    },
    /// Persisted state (e.g. an on-disk LUT file) could not be read,
    /// written, or did not match what the loader expected.
    Persistence {
        /// What went wrong.
        reason: String,
    },
    /// A serving-runtime failure outside the gate model itself (e.g. a
    /// scheduler worker that went away mid-request).
    Runtime {
        /// What went wrong.
        reason: String,
    },
    /// An underlying physics computation failed.
    Physics(PhysicsError),
    /// An underlying micromagnetic simulation failed.
    Simulation(SimError),
    /// An underlying numerical routine failed.
    Math(MathError),
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::InvalidParameter { parameter, value } => {
                write!(f, "parameter `{parameter}` is invalid: {value}")
            }
            GateError::UnsupportedFunction { reason } => {
                write!(f, "unsupported logic configuration: {reason}")
            }
            GateError::BadChannelFrequency { frequency, reason } => {
                write!(f, "channel frequency {frequency:.3e} Hz rejected: {reason}")
            }
            GateError::LayoutCollision { attempts } => {
                write!(
                    f,
                    "layout collision unresolved after {attempts} repair iterations"
                )
            }
            GateError::MalformedLayout { channel, reason } => {
                write!(f, "malformed layout at channel {channel}: {reason}")
            }
            GateError::WordWidthMismatch { expected, actual } => {
                write!(
                    f,
                    "word width {actual} does not match the gate's {expected} channels"
                )
            }
            GateError::InputCountMismatch { expected, actual } => {
                write!(f, "gate expects {expected} input words, got {actual}")
            }
            GateError::BitIndexOutOfRange { index, width } => {
                write!(f, "bit index {index} out of range for a {width}-bit word")
            }
            GateError::Persistence { reason } => {
                write!(f, "persistence error: {reason}")
            }
            GateError::Runtime { reason } => {
                write!(f, "runtime error: {reason}")
            }
            GateError::Physics(e) => write!(f, "physics error: {e}"),
            GateError::Simulation(e) => write!(f, "simulation error: {e}"),
            GateError::Math(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for GateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GateError::Physics(e) => Some(e),
            GateError::Simulation(e) => Some(e),
            GateError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PhysicsError> for GateError {
    fn from(e: PhysicsError) -> Self {
        GateError::Physics(e)
    }
}

impl From<SimError> for GateError {
    fn from(e: SimError) -> Self {
        GateError::Simulation(e)
    }
}

impl From<MathError> for GateError {
    fn from(e: MathError) -> Self {
        GateError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = GateError::WordWidthMismatch {
            expected: 8,
            actual: 4,
        };
        assert!(e.to_string().contains('8'));
        let e = GateError::LayoutCollision { attempts: 100 };
        assert!(e.to_string().contains("100"));
        let e = GateError::MalformedLayout {
            channel: 3,
            reason: "missing detector",
        };
        assert!(e.to_string().contains("channel 3"));
        assert!(e.to_string().contains("missing detector"));
        let e = GateError::Persistence {
            reason: "bad magic".into(),
        };
        assert!(e.to_string().contains("bad magic"));
        let e = GateError::Runtime {
            reason: "worker gone".into(),
        };
        assert!(e.to_string().contains("worker gone"));
    }

    #[test]
    fn conversions_and_sources() {
        use std::error::Error;
        let e: GateError = PhysicsError::NotPerpendicular {
            internal_field: -1.0,
        }
        .into();
        assert!(e.source().is_some());
        let e: GateError = SimError::NothingToDo.into();
        assert!(matches!(e, GateError::Simulation(_)));
        let e: GateError = MathError::EmptyInput.into();
        assert!(matches!(e, GateError::Math(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GateError>();
    }
}
