//! A small data-parallel arithmetic-logic unit.
//!
//! Demonstrates the paradigm at its most CMOS-like: one ALU built from
//! data-parallel MAJ/XOR gates executes the same operation on `n`
//! independent operand pairs per evaluation. Subtraction exploits the
//! paper's free inversion (§III: complemented outputs via detector
//! placement): `a − b = a + !b + 1` costs no extra gates beyond the
//! adder, only inverted readouts on the `b` operand and a constant-one
//! carry-in.

use crate::adder::{full_adder, transpose_from_words, transpose_to_words};
use crate::netlist::{Circuit, NodeId};
use magnon_core::word::Word;
use magnon_core::GateError;

/// The operations the ALU supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `a + b` (carry-out preserved in the extra output bit).
    Add,
    /// `a − b` in two's complement (result truncated to the bit width;
    /// the extra output bit is the borrow-free flag).
    Sub,
    /// Bitwise AND via `MAJ(a, b, 0)`.
    And,
    /// Bitwise OR via `MAJ(a, b, 1)`.
    Or,
    /// Bitwise XOR.
    Xor,
}

/// A fixed-width, word-parallel ALU.
///
/// # Examples
///
/// ```
/// use magnon_circuits::alu::{Alu, AluOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let alu = Alu::new(8, 8)?;
/// let a = [200u64, 15, 255, 0, 77, 128, 33, 1];
/// let b = [55u64, 15, 1, 0, 12, 127, 3, 254];
/// let sums = alu.execute(AluOp::Add, &a, &b)?;
/// assert_eq!(sums[0], 255);
/// let diffs = alu.execute(AluOp::Sub, &a, &b)?;
/// assert_eq!(diffs[0], 145);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Alu {
    add_circuit: Circuit,
    sub_circuit: Circuit,
    logic_circuit: Circuit,
    bit_width: usize,
    word_width: usize,
}

fn build_adder_circuit(
    bit_width: usize,
    word_width: usize,
    invert_b: bool,
) -> Result<Circuit, GateError> {
    let mut circuit = Circuit::new(word_width)?;
    let a_bits: Vec<NodeId> = (0..bit_width).map(|_| circuit.input()).collect();
    let b_raw: Vec<NodeId> = (0..bit_width).map(|_| circuit.input()).collect();
    let b_bits: Vec<NodeId> = if invert_b {
        b_raw
            .iter()
            .map(|&b| circuit.not(b))
            .collect::<Result<_, _>>()?
    } else {
        b_raw
    };
    let mut carry = if invert_b {
        circuit.constant(Word::ones(word_width)?)? // +1 for two's complement
    } else {
        circuit.constant(Word::zeros(word_width)?)?
    };
    for i in 0..bit_width {
        let (sum, carry_out) = full_adder(&mut circuit, a_bits[i], b_bits[i], carry)?;
        circuit.mark_output(sum)?;
        carry = carry_out;
    }
    circuit.mark_output(carry)?;
    Ok(circuit)
}

fn build_logic_circuit(bit_width: usize, word_width: usize) -> Result<Circuit, GateError> {
    // One circuit computing AND, OR, XOR per bit; outputs grouped by op.
    let mut circuit = Circuit::new(word_width)?;
    let a_bits: Vec<NodeId> = (0..bit_width).map(|_| circuit.input()).collect();
    let b_bits: Vec<NodeId> = (0..bit_width).map(|_| circuit.input()).collect();
    let mut ands = Vec::with_capacity(bit_width);
    let mut ors = Vec::with_capacity(bit_width);
    let mut xors = Vec::with_capacity(bit_width);
    for i in 0..bit_width {
        ands.push(circuit.and2(a_bits[i], b_bits[i])?);
        ors.push(circuit.or2(a_bits[i], b_bits[i])?);
        xors.push(circuit.xor2(a_bits[i], b_bits[i])?);
    }
    for id in ands.into_iter().chain(ors).chain(xors) {
        circuit.mark_output(id)?;
    }
    Ok(circuit)
}

impl Alu {
    /// Builds a `bit_width`-bit ALU over `word_width`-channel words.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for unsupported widths.
    pub fn new(bit_width: usize, word_width: usize) -> Result<Self, GateError> {
        if bit_width == 0 || bit_width > 63 {
            return Err(GateError::InvalidParameter {
                parameter: "bit_width",
                value: bit_width as f64,
            });
        }
        Ok(Alu {
            add_circuit: build_adder_circuit(bit_width, word_width, false)?,
            sub_circuit: build_adder_circuit(bit_width, word_width, true)?,
            logic_circuit: build_logic_circuit(bit_width, word_width)?,
            bit_width,
            word_width,
        })
    }

    /// ALU bit width.
    pub fn bit_width(&self) -> usize {
        self.bit_width
    }

    /// Parallel operand pairs per evaluation.
    pub fn word_width(&self) -> usize {
        self.word_width
    }

    /// Total gate counts across the three internal circuits.
    pub fn gate_counts(&self) -> crate::netlist::GateCounts {
        let a = self.add_circuit.gate_counts();
        let s = self.sub_circuit.gate_counts();
        let l = self.logic_circuit.gate_counts();
        crate::netlist::GateCounts {
            maj3: a.maj3 + s.maj3 + l.maj3,
            xor2: a.xor2 + s.xor2 + l.xor2,
            not: a.not + s.not + l.not,
        }
    }

    fn check_operands(&self, a: &[u64], b: &[u64]) -> Result<(), GateError> {
        if a.len() != self.word_width || b.len() != self.word_width {
            return Err(GateError::InputCountMismatch {
                expected: self.word_width,
                actual: a.len().min(b.len()),
            });
        }
        let limit = 1u64 << self.bit_width;
        for &v in a.iter().chain(b.iter()) {
            if v >= limit {
                return Err(GateError::InvalidParameter {
                    parameter: "operand",
                    value: v as f64,
                });
            }
        }
        Ok(())
    }

    /// Executes `op` on `word_width` operand pairs at once.
    ///
    /// For `Add` the result may use `bit_width + 1` bits (carry-out);
    /// `Sub` truncates to `bit_width` bits (two's complement wrap).
    ///
    /// # Errors
    ///
    /// * [`GateError::InputCountMismatch`] for wrong operand counts.
    /// * [`GateError::InvalidParameter`] for out-of-range operands.
    pub fn execute(&self, op: AluOp, a: &[u64], b: &[u64]) -> Result<Vec<u64>, GateError> {
        self.execute_inner(op, a, b, None)
    }

    /// [`Alu::execute`] with every gate evaluated on a physical
    /// spin-wave backend from `bank`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Alu::execute`], plus gate/backend errors
    /// from the bank.
    pub fn execute_with(
        &self,
        bank: &mut crate::netlist::GateBank,
        op: AluOp,
        a: &[u64],
        b: &[u64],
    ) -> Result<Vec<u64>, GateError> {
        self.execute_inner(op, a, b, Some(bank))
    }

    /// [`Alu::execute`] with every gate routed through any
    /// [`crate::netlist::GateDispatcher`] — an inline bank or a serving
    /// scheduler.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Alu::execute`], plus gate/backend errors
    /// from the dispatcher.
    pub fn execute_on(
        &self,
        dispatcher: &mut dyn crate::netlist::GateDispatcher,
        op: AluOp,
        a: &[u64],
        b: &[u64],
    ) -> Result<Vec<u64>, GateError> {
        self.execute_inner(op, a, b, Some(dispatcher))
    }

    fn execute_inner(
        &self,
        op: AluOp,
        a: &[u64],
        b: &[u64],
        mut dispatcher: Option<&mut dyn crate::netlist::GateDispatcher>,
    ) -> Result<Vec<u64>, GateError> {
        self.check_operands(a, b)?;
        let a_words = transpose_to_words(a, self.bit_width, self.word_width)?;
        let b_words = transpose_to_words(b, self.bit_width, self.word_width)?;
        let inputs: Vec<Word> = a_words.iter().chain(b_words.iter()).copied().collect();
        let mut run = |circuit: &Circuit| -> Result<Vec<Word>, GateError> {
            match dispatcher.as_deref_mut() {
                Some(d) => circuit.evaluate_on(d, &inputs),
                None => circuit.evaluate(&inputs),
            }
        };
        let mask = (1u64 << self.bit_width) - 1;
        match op {
            AluOp::Add => {
                let out = run(&self.add_circuit)?;
                Ok(transpose_from_words(&out, self.word_width))
            }
            AluOp::Sub => {
                let out = run(&self.sub_circuit)?;
                // Drop the final carry (borrow-free flag), truncate.
                let sums = transpose_from_words(&out[..self.bit_width], self.word_width);
                Ok(sums.into_iter().map(|v| v & mask).collect())
            }
            AluOp::And | AluOp::Or | AluOp::Xor => {
                let out = run(&self.logic_circuit)?;
                let offset = match op {
                    AluOp::And => 0,
                    AluOp::Or => self.bit_width,
                    _ => 2 * self.bit_width,
                };
                Ok(transpose_from_words(
                    &out[offset..offset + self.bit_width],
                    self.word_width,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn alu() -> Alu {
        Alu::new(8, 8).unwrap()
    }

    #[test]
    fn add_matches_reference() {
        let a = [1u64, 2, 3, 250, 255, 0, 128, 127];
        let b = [1u64, 3, 5, 10, 255, 0, 128, 129];
        let out = alu().execute(AluOp::Add, &a, &b).unwrap();
        for c in 0..8 {
            assert_eq!(out[c], a[c] + b[c]);
        }
    }

    #[test]
    fn sub_matches_wrapping_reference() {
        let a = [10u64, 0, 255, 100, 1, 200, 50, 128];
        let b = [3u64, 1, 255, 150, 2, 100, 50, 127];
        let out = alu().execute(AluOp::Sub, &a, &b).unwrap();
        for c in 0..8 {
            assert_eq!(out[c], (a[c].wrapping_sub(b[c])) & 0xFF, "channel {c}");
        }
    }

    #[test]
    fn logic_ops_match_reference() {
        let a = [0xF0u64, 0x0F, 0xAA, 0x55, 0xFF, 0x00, 0x3C, 0xC3];
        let b = [0xFFu64, 0xFF, 0x55, 0x55, 0x0F, 0x00, 0xC3, 0xC3];
        let and = alu().execute(AluOp::And, &a, &b).unwrap();
        let or = alu().execute(AluOp::Or, &a, &b).unwrap();
        let xor = alu().execute(AluOp::Xor, &a, &b).unwrap();
        for c in 0..8 {
            assert_eq!(and[c], a[c] & b[c], "AND channel {c}");
            assert_eq!(or[c], a[c] | b[c], "OR channel {c}");
            assert_eq!(xor[c], a[c] ^ b[c], "XOR channel {c}");
        }
    }

    #[test]
    fn randomised_against_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(314);
        let alu = Alu::new(12, 8).unwrap();
        for _ in 0..25 {
            let a: Vec<u64> = (0..8).map(|_| rng.gen_range(0..4096)).collect();
            let b: Vec<u64> = (0..8).map(|_| rng.gen_range(0..4096)).collect();
            let add = alu.execute(AluOp::Add, &a, &b).unwrap();
            let sub = alu.execute(AluOp::Sub, &a, &b).unwrap();
            for c in 0..8 {
                assert_eq!(add[c], a[c] + b[c]);
                assert_eq!(sub[c], a[c].wrapping_sub(b[c]) & 0xFFF);
            }
        }
    }

    #[test]
    fn inversions_are_free() {
        // Subtraction adds only NOT nodes (inverted readout) over the
        // adder: MAJ/XOR counts identical between add and sub circuits.
        let alu = alu();
        let add_counts = alu.add_circuit.gate_counts();
        let sub_counts = alu.sub_circuit.gate_counts();
        assert_eq!(add_counts.maj3, sub_counts.maj3);
        assert_eq!(add_counts.xor2, sub_counts.xor2);
        assert_eq!(add_counts.not, 0);
        assert_eq!(sub_counts.not, 8);
        assert_eq!(add_counts.transducers(), sub_counts.transducers());
    }

    #[test]
    fn physical_alu_matches_boolean_alu() {
        use magnon_core::backend::BackendChoice;
        use magnon_physics::waveguide::Waveguide;
        let alu = Alu::new(4, 8).unwrap();
        let mut bank = crate::netlist::GateBank::new(
            Waveguide::paper_default().unwrap(),
            8,
            BackendChoice::Cached,
        );
        let a = [7u64, 0, 15, 4, 9, 12, 3, 1];
        let b = [1u64, 15, 15, 11, 6, 2, 3, 14];
        for op in [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor] {
            let physical = alu.execute_with(&mut bank, op, &a, &b).unwrap();
            let boolean = alu.execute(op, &a, &b).unwrap();
            assert_eq!(physical, boolean, "{op:?}");
        }
    }

    #[test]
    fn operand_validation() {
        let alu = alu();
        assert!(alu.execute(AluOp::Add, &[0; 7], &[0; 8]).is_err());
        assert!(alu
            .execute(AluOp::Add, &[256, 0, 0, 0, 0, 0, 0, 0], &[0; 8])
            .is_err());
        assert!(Alu::new(0, 8).is_err());
        assert!(Alu::new(64, 8).is_err());
    }

    #[test]
    fn narrow_and_wide_words() {
        let alu2 = Alu::new(4, 2).unwrap();
        let out = alu2.execute(AluOp::Add, &[7, 8], &[8, 7]).unwrap();
        assert_eq!(out, vec![15, 15]);
        let alu16 = Alu::new(4, 16).unwrap();
        let a = vec![5u64; 16];
        let b = vec![9u64; 16];
        assert!(alu16
            .execute(AluOp::Add, &a, &b)
            .unwrap()
            .iter()
            .all(|&v| v == 14));
    }
}
