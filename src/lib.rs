//! # spinwave-parallel
//!
//! A comprehensive Rust reproduction of *"n-bit Data Parallel Spin Wave
//! Logic Gate"* (Mahmoud, Vanderveken, Ciubotaru, Adelmann, Cotofana,
//! Hamdioui — DATE 2020, arXiv:2109.05229).
//!
//! Spin waves of different frequencies coexist in one waveguide and only
//! interfere with their own frequency. This umbrella crate re-exports
//! the whole workspace:
//!
//! * [`math`] — FFT, Goertzel, ODE integrators, root finding,
//! * [`physics`] — materials, demagnetizing factors, dispersion, damping,
//! * [`micromag`] — finite-difference LLG simulator (the OOMMF-class
//!   substrate used for validation),
//! * [`core`] — the paper's contribution: `n`-bit data-parallel
//!   multi-frequency in-line logic gates (majority, XOR) behind
//!   pluggable evaluation backends (analytic superposition, precompiled
//!   truth-table cache, full LLG micromagnetics),
//! * [`cost`] — area/delay/energy models and the scalar-vs-parallel
//!   comparison of the paper's §V.B,
//! * [`circuits`] — word-level circuits (full adders, parity trees)
//!   composed from data-parallel gates, evaluable on any backend,
//! * [`serve`] — the sharded serving runtime: a waveguide-aware
//!   scheduler that coalesces requests within and across gates, with
//!   on-disk LUT persistence for warm restarts,
//! * [`net`] — the TCP front-end over the scheduler: a versioned
//!   checksummed binary wire protocol, a threaded server, and a
//!   blocking pipelined client, so remote request streams join the
//!   same waveguide batches.
//!
//! # Quickstart
//!
//! Build a byte-wide (8-channel) 3-input majority gate and evaluate all
//! eight data sets at once:
//!
//! ```
//! use spinwave_parallel::core::prelude::*;
//! use spinwave_parallel::physics::waveguide::Waveguide;
//! use spinwave_parallel::physics::material::Material;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let guide = Waveguide::paper_default()?;
//! let gate = ParallelGateBuilder::new(guide)
//!     .channels(8)
//!     .inputs(3)
//!     .function(LogicFunction::Majority)
//!     .build()?;
//!
//! let a = Word::from_u8(0b1010_1010);
//! let b = Word::from_u8(0b1100_1100);
//! let c = Word::from_u8(0b1111_0000);
//! let out = gate.evaluate(&[a, b, c])?;
//! assert_eq!(out.word().to_u8(), (0b1010_1010u8 & 0b1100_1100)
//!     | (0b1010_1010u8 & 0b1111_0000)
//!     | (0b1100_1100u8 & 0b1111_0000));
//! # let _ = Material::fe_co_b();
//! # Ok(())
//! # }
//! ```
//!
//! # Batched serving through backends
//!
//! For throughput, open a [`core::backend::GateSession`]: the channel
//! plan, layout, constructive references and equalised drive amplitudes
//! are compiled **once**, then any number of operand sets stream
//! through the chosen [`core::backend::SpinWaveBackend`] —
//!
//! * [`BackendChoice::Analytic`] — exact wave superposition,
//! * [`BackendChoice::Cached`] — memoized per-channel truth-table LUT
//!   for hot-path serving,
//! * [`BackendChoice::Micromag`] — the full LLG simulator behind the
//!   same interface (the paper's OOMMF methodology).
//!
//! [`BackendChoice::Analytic`]: core::backend::BackendChoice::Analytic
//! [`BackendChoice::Cached`]: core::backend::BackendChoice::Cached
//! [`BackendChoice::Micromag`]: core::backend::BackendChoice::Micromag
//!
//! ```
//! use spinwave_parallel::core::prelude::*;
//! use spinwave_parallel::physics::waveguide::Waveguide;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
//!     .channels(8)
//!     .inputs(3)
//!     .build()?;
//! let mut session = gate.session(BackendChoice::Cached)?;
//! let batch: Vec<OperandSet> = (0u8..64)
//!     .map(|i| OperandSet::new(vec![
//!         Word::from_u8(i.wrapping_mul(37)),
//!         Word::from_u8(i.wrapping_mul(59)),
//!         Word::from_u8(i.wrapping_mul(83)),
//!     ]))
//!     .collect();
//! let outputs = session.evaluate_batch(&batch)?;
//! assert_eq!(outputs.len(), 64);
//! # Ok(())
//! # }
//! ```
//!
//! Whole circuits switch engines the same way: a
//! [`circuits::netlist::GateBank`] holds one session per gate shape, so
//! `circuit.evaluate_with(&mut bank, …)` runs every MAJ/XOR node on the
//! bank's backend — analytic, cached, or micromagnetic — with one line
//! changed.
//!
//! # Serving at scale
//!
//! For sustained traffic, hand the gates to the
//! [`serve::Scheduler`]: requests queue on bounded per-shard channels,
//! coalesce under a batch-size/linger policy (within a gate *and*
//! across gates sharing a [`core::gate::WaveguideId`]), and cached
//! truth-table LUTs persist across restarts. See
//! `examples/serve_pipeline.rs` and the `serve_throughput` bench.
//!
//! Whole netlists compile to scheduler-ready plans with
//! [`compiler::compile`]: ASAP wavefronts, spectrum-aware FDM
//! placement onto `(waveguide, lane)` slots, and pipelined execution
//! through [`serve::CircuitExecutor`] with dependency-aware
//! submission. See `examples/serve_compiled.rs` and the
//! `serve_circuit` bench.

pub use magnon_circuits as circuits;
pub use magnon_compiler as compiler;
pub use magnon_core as core;
pub use magnon_cost as cost;
pub use magnon_math as math;
pub use magnon_micromag as micromag;
pub use magnon_net as net;
pub use magnon_physics as physics;
pub use magnon_serve as serve;
