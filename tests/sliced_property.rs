//! Equivalence and persistence tests for the bit-sliced batch kernel:
//! the word-parallel sliced path must agree bit-for-bit with scalar
//! cached evaluation and with the analytic superposition engine on
//! randomized batches (including ragged tails and cold-combo misses
//! mid-batch), dense LUT rows must survive a `lut_store` round-trip and
//! `split()`, and the scheduler's logic-only drain must stay
//! output-equivalent with adaptive rebalancing enabled.

use proptest::prelude::*;
use spinwave_parallel::core::backend::{BackendChoice, OperandSet};
use spinwave_parallel::core::lut_store::{load_lut, save_lut};
use spinwave_parallel::core::prelude::*;
use spinwave_parallel::core::truth::LogicFunction;
use spinwave_parallel::physics::waveguide::Waveguide;
use spinwave_parallel::serve::{AdaptiveConfig, SchedulerBuilder, ServeConfig, Ticket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn build_gate(width: usize, inputs: usize, function: LogicFunction) -> ParallelGate {
    ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
        .channels(width)
        .inputs(inputs)
        .function(function)
        .build()
        .unwrap()
}

/// SplitMix64 — deterministic word material from a seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn batch_from_seed(seed: u64, len: usize, width: usize, inputs: usize) -> Vec<OperandSet> {
    (0..len)
        .map(|s| {
            let words = (0..inputs)
                .map(|j| {
                    let bits = mix(seed ^ ((s as u64) << 20) ^ (j as u64));
                    Word::from_bits(bits & lane_mask_bits(width), width).unwrap()
                })
                .collect();
            OperandSet::new(words)
        })
        .collect()
}

fn lane_mask_bits(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// A directory unique to this test invocation under the system temp
/// dir.
fn scratch_dir(label: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "magnon_sliced_test_{}_{label}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sliced ≡ scalar cached ≡ analytic on randomized batches.
    ///
    /// Three evaluations of the same batch must agree word-for-word:
    /// a *cold* cached session (every block hits the cold-combo
    /// fallback mid-batch before rows densify), a *warm* cached
    /// session (`warm_all` → pure dense SOP/gather lanes), and the
    /// analytic engine. Batch lengths are drawn so that `len % 64 != 0`
    /// is common — the ragged scalar tail is exercised, not just full
    /// 64-lane blocks.
    #[test]
    fn sliced_matches_scalar_and_analytic(
        seed in 0u64..u64::MAX,
        len in 1usize..200,
        width_sel in 0usize..3,
        design_sel in 0usize..3,
    ) {
        let width = [8, 16, 32][width_sel];
        let (inputs, function) = [
            (3, LogicFunction::Majority),
            (5, LogicFunction::Majority),
            (2, LogicFunction::Xor),
        ][design_sel];
        let gate = build_gate(width, inputs, function);
        let batch = batch_from_seed(seed, len, width, inputs);

        let mut analytic = gate.session(BackendChoice::Analytic).unwrap();
        let reference: Vec<Word> = analytic
            .evaluate_batch(&batch)
            .unwrap()
            .iter()
            .map(|out| out.word())
            .collect();

        // Cold cached session: the first sliced pass resolves every
        // fresh combo through the analytic fallback mid-batch.
        let mut cold = gate.session(BackendChoice::Cached).unwrap();
        let cold_words = cold.evaluate_batch_logic(&batch).unwrap();
        prop_assert_eq!(&cold_words, &reference);

        // Warm cached session: every row dense before the batch, so
        // the kernel never leaves the word-parallel path.
        let mut warm = gate.session(BackendChoice::Cached).unwrap();
        warm.warm_all();
        let stats = warm.lut_stats().unwrap();
        prop_assert_eq!(stats.dense_rows, width);
        let warm_words = warm.evaluate_batch_logic(&batch).unwrap();
        prop_assert_eq!(&warm_words, &reference);
        let after = warm.lut_stats().unwrap();
        prop_assert_eq!(after.misses, stats.misses, "warm batch must not miss");

        // Full-output batches report the same words, and re-running the
        // now-warm cold session agrees too (all rows densified).
        let full: Vec<Word> = warm
            .evaluate_batch(&batch)
            .unwrap()
            .iter()
            .map(|out| out.word())
            .collect();
        prop_assert_eq!(&full, &reference);
        let rerun = cold.evaluate_batch_logic(&batch).unwrap();
        prop_assert_eq!(&rerun, &reference);
    }
}

/// Dense LUT rows round-trip through `lut_store`: a snapshot of a
/// fully warmed gate, saved and re-loaded from disk, re-enters the
/// dense form on `import_lut` and serves without a single miss.
#[test]
fn dense_rows_round_trip_through_lut_store() {
    let gate = build_gate(8, 3, LogicFunction::Majority);
    let mut warm = gate.session(BackendChoice::Cached).unwrap();
    warm.warm_all();
    assert_eq!(warm.lut_stats().unwrap().dense_rows, 8);

    let snapshot = warm.lut_snapshot().expect("cached backend snapshots");
    let dir = scratch_dir("roundtrip");
    let path = dir.join("maj3.lut");
    save_lut(&path, &snapshot).unwrap();
    let restored = load_lut(&path).unwrap();

    let mut fresh = gate.session(BackendChoice::Cached).unwrap();
    let imported = fresh.import_lut(&restored).unwrap();
    assert!(imported > 0, "snapshot entries imported");
    let stats = fresh.lut_stats().unwrap();
    assert_eq!(stats.dense_rows, 8, "import re-establishes dense rows");
    assert_eq!(stats.total_rows, 8);

    let batch = batch_from_seed(7, 100, 8, 3);
    let words = fresh.evaluate_batch_logic(&batch).unwrap();
    let mut analytic = gate.session(BackendChoice::Analytic).unwrap();
    let reference: Vec<Word> = analytic
        .evaluate_batch(&batch)
        .unwrap()
        .iter()
        .map(|out| out.word())
        .collect();
    assert_eq!(words, reference);
    let after = fresh.lut_stats().unwrap();
    assert_eq!(after.misses, 0, "imported dense rows serve without misses");
    assert!(after.hits > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `split()` clones the dense rows but zeroes the per-session
/// counters: the clone serves warm from its first batch.
#[test]
fn split_preserves_dense_rows_and_resets_counters() {
    let gate = build_gate(16, 3, LogicFunction::Majority);
    let mut warm = gate.session(BackendChoice::Cached).unwrap();
    warm.warm_all();
    let _ = warm
        .evaluate_batch_logic(&batch_from_seed(1, 64, 16, 3))
        .unwrap();
    assert!(warm.lut_stats().unwrap().hits > 0);

    let mut clone = warm.split_session().unwrap();
    let stats = clone.lut_stats().unwrap();
    assert_eq!(stats.hits, 0, "split resets hit counter");
    assert_eq!(stats.misses, 0, "split resets miss counter");
    assert_eq!(stats.dense_rows, 16, "split keeps dense rows");

    let _ = clone
        .evaluate_batch_logic(&batch_from_seed(2, 80, 16, 3))
        .unwrap();
    let after = clone.lut_stats().unwrap();
    assert_eq!(after.misses, 0, "clone serves warm");
    assert!(after.hits > 0);
}

/// The scheduler's logic-only drain (default `keep_readouts: false`)
/// stays output-equivalent to sequential evaluation with adaptive
/// rebalancing on, and tickets carry no per-channel readouts; flipping
/// `keep_readouts` restores the full analog vector.
#[test]
fn scheduler_logic_only_equivalence_with_rebalancing() {
    for keep_readouts in [false, true] {
        let gate = build_gate(8, 3, LogicFunction::Majority);
        let mut builder = SchedulerBuilder::new(ServeConfig {
            keep_readouts,
            workers: 2,
            max_batch: 32,
            linger: Duration::from_micros(50),
            queue_depth: 256,
            lut_dir: None,
            adaptive: AdaptiveConfig {
                rebalance: true,
                rebalance_interval: 8,
                ..AdaptiveConfig::default()
            },
        });
        let id = builder
            .register("maj3", gate.clone(), BackendChoice::Cached)
            .unwrap();
        let scheduler = builder.build().unwrap();

        let batch = batch_from_seed(11, 96, 8, 3);
        let tickets: Vec<Ticket> = batch
            .iter()
            .map(|set| scheduler.submit(id, set.clone()).unwrap())
            .collect();
        for (ticket, set) in tickets.into_iter().zip(batch.iter()) {
            let served = ticket.wait().unwrap();
            let reference = gate.evaluate(set.words()).unwrap();
            assert_eq!(served.word(), reference.word());
            if keep_readouts {
                assert_eq!(served.readouts().len(), 8, "full analog readouts kept");
            } else {
                assert!(
                    served.readouts().is_empty(),
                    "logic-only drain strips readouts"
                );
            }
        }
        scheduler.shutdown().unwrap();
    }
}
