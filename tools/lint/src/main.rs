//! CLI entry point for the workspace invariant linter. All rules and
//! mechanics live in the library (`magnon_lint`), which the semantic
//! analyzer (`tools/analyze`) also links against for its lexer.

use std::path::PathBuf;

use magnon_lint::{lint_workspace, workspace_root};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut root_arg: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root_arg = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: magnon-lint [--root <workspace dir>]");
                return;
            }
            other => {
                eprintln!("magnon-lint: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let start = root_arg.unwrap_or_else(|| {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(PathBuf::from)
            .or_else(|_| std::env::current_dir())
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    let Some(root) = workspace_root(&start) else {
        eprintln!(
            "magnon-lint: no workspace Cargo.toml found above {}",
            start.display()
        );
        std::process::exit(2);
    };
    let (findings, files) = lint_workspace(&root);
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("magnon-lint: clean ({files} files scanned)");
    } else {
        println!(
            "magnon-lint: {} finding(s) across {files} files scanned",
            findings.len()
        );
        std::process::exit(1);
    }
}
