//! Façade ≡ std parity.
//!
//! `magnon_core::sync` must behave exactly like the `std` primitives it
//! stands in for. This suite runs under BOTH configurations: in a
//! normal build it exercises the plain re-exports, and under
//! `RUSTFLAGS="--cfg mcheck"` it exercises the shims' *offline* mode
//! (no execution active), which must still be a faithful drop-in —
//! crates port to the façade unconditionally, so any divergence here is
//! a production behavior change, not just a modeling artifact.

use magnon_core::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use magnon_core::sync::time::{Duration, Instant};
use magnon_core::sync::{mpsc, thread, Arc, Mutex};

#[test]
fn atomics_match_std_semantics() {
    let a = AtomicU64::new(5);
    assert_eq!(a.load(Ordering::SeqCst), 5);
    a.store(7, Ordering::SeqCst);
    assert_eq!(a.swap(9, Ordering::SeqCst), 7);
    assert_eq!(a.fetch_add(1, Ordering::SeqCst), 9);
    assert_eq!(a.fetch_sub(4, Ordering::SeqCst), 10);
    assert_eq!(a.fetch_max(100, Ordering::SeqCst), 6);
    assert_eq!(a.fetch_min(3, Ordering::SeqCst), 100);
    assert_eq!(
        a.compare_exchange(3, 42, Ordering::SeqCst, Ordering::SeqCst),
        Ok(3)
    );
    assert_eq!(
        a.compare_exchange(3, 50, Ordering::SeqCst, Ordering::SeqCst),
        Err(42)
    );
    assert_eq!(a.into_inner(), 42);

    let mut b = AtomicUsize::new(0);
    *b.get_mut() = 11;
    assert_eq!(b.load(Ordering::Relaxed), 11);

    let flag = AtomicBool::new(false);
    assert!(!flag.swap(true, Ordering::AcqRel));
    assert!(flag.load(Ordering::Acquire));
}

#[test]
fn mutex_matches_std_semantics() {
    let m = Mutex::new(1);
    {
        let mut guard = m.lock().unwrap();
        *guard += 1;
        // Held ⇒ try_lock fails without blocking.
        assert!(m.try_lock().is_err());
    }
    assert_eq!(*m.try_lock().unwrap(), 2);
    assert_eq!(m.into_inner().unwrap(), 2);

    let mut m = Mutex::new(7);
    *m.get_mut().unwrap() = 8;
    assert_eq!(*m.lock().unwrap(), 8);
}

#[test]
fn channels_match_std_semantics() {
    // Unbounded: send/recv/try_recv, then disconnect errors.
    let (tx, rx) = mpsc::channel();
    tx.send(1).unwrap();
    tx.send(2).unwrap();
    assert_eq!(rx.recv().unwrap(), 1);
    assert_eq!(rx.try_recv().unwrap(), 2);
    assert_eq!(rx.try_recv(), Err(mpsc::TryRecvError::Empty));
    drop(tx);
    assert_eq!(rx.try_recv(), Err(mpsc::TryRecvError::Disconnected));
    assert_eq!(rx.recv(), Err(mpsc::RecvError));

    // Bounded: try_send reports Full with the value given back.
    let (tx, rx) = mpsc::sync_channel(1);
    tx.try_send(10).unwrap();
    assert_eq!(tx.try_send(11), Err(mpsc::TrySendError::Full(11)));
    assert_eq!(rx.recv().unwrap(), 10);
    tx.send(12).unwrap();
    drop(rx);
    assert!(matches!(
        tx.try_send(13),
        Err(mpsc::TrySendError::Disconnected(13))
    ));

    // recv_timeout: delivered value wins, an empty closed channel is
    // Disconnected, an empty open channel times out.
    let (tx, rx) = mpsc::channel();
    tx.send(5).unwrap();
    assert_eq!(rx.recv_timeout(Duration::from_millis(100)).unwrap(), 5);
    assert_eq!(
        rx.recv_timeout(Duration::from_millis(1)),
        Err(mpsc::RecvTimeoutError::Timeout)
    );
    drop(tx);
    assert_eq!(
        rx.recv_timeout(Duration::from_millis(1)),
        Err(mpsc::RecvTimeoutError::Disconnected)
    );
}

#[test]
fn channel_delivers_across_threads() {
    let (tx, rx) = mpsc::sync_channel(2);
    let producer = thread::spawn(move || {
        for i in 0..16u64 {
            tx.send(i).unwrap();
        }
    });
    let got: Vec<u64> = rx.iter().collect();
    producer.join().unwrap();
    assert_eq!(got, (0..16).collect::<Vec<_>>());
}

#[test]
fn threads_match_std_semantics() {
    let shared = Arc::new(AtomicU64::new(0));
    let worker = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("facade-parity".into())
            .spawn(move || {
                shared.fetch_add(3, Ordering::SeqCst);
                thread::current().name().map(str::to_owned)
            })
            .unwrap()
    };
    let name = worker.join().unwrap();
    assert_eq!(name.as_deref(), Some("facade-parity"));
    assert_eq!(shared.load(Ordering::SeqCst), 3);

    // A pre-delivered unpark token makes the next park return at once
    // (the std park contract this crate's executor relies on).
    thread::current().unpark();
    thread::park();

    // park_timeout returns after the deadline with no token pending.
    thread::park_timeout(Duration::from_millis(1));
    thread::sleep(Duration::from_millis(1));
    thread::yield_now();
}

#[test]
fn mutex_serializes_across_threads() {
    let m = Arc::new(Mutex::new(0u64));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                for _ in 0..50 {
                    *m.lock().unwrap() += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*m.lock().unwrap(), 200);
}

#[test]
fn instants_are_monotonic() {
    let t0 = Instant::now();
    let t1 = Instant::now();
    assert!(t1 >= t0);
    assert_eq!(
        t0.duration_since(t1.max(t0) + Duration::from_secs(1)),
        Duration::ZERO
    );
    let later = t0 + Duration::from_millis(5);
    assert_eq!(later.duration_since(t0), Duration::from_millis(5));
    assert_eq!(later - t0, Duration::from_millis(5));
    assert!(t0.checked_duration_since(later).is_none());
    assert_eq!(later.checked_sub(Duration::from_millis(5)), Some(t0));
    let _ = t0.elapsed();
}
