//! Phase encoding of logic values and readout conventions.
//!
//! The paper (§II): logic `0` is a spin wave with phase 0, logic `1` a
//! wave with phase π. The gate's output can be read **directly** (the
//! detector sits an integer number of wavelengths from the last source)
//! or **inverted** (an odd number of half wavelengths away), giving
//! complemented outputs for free (§III).

use std::f64::consts::PI;

/// Drive phase of a logic value: 0 → 0 rad, 1 → π rad.
///
/// # Examples
///
/// ```
/// use magnon_core::encoding::phase_of;
///
/// assert_eq!(phase_of(false), 0.0);
/// assert_eq!(phase_of(true), std::f64::consts::PI);
/// ```
#[inline]
pub fn phase_of(bit: bool) -> f64 {
    if bit {
        PI
    } else {
        0.0
    }
}

/// Decodes a phase (radians, any branch) into a logic value: phases
/// within ±π/2 of 0 are logic `0`, the rest logic `1`.
///
/// # Examples
///
/// ```
/// use magnon_core::encoding::decode_phase;
///
/// assert!(!decode_phase(0.1));
/// assert!(decode_phase(3.0));
/// assert!(decode_phase(-3.0));
/// assert!(!decode_phase(2.0 * std::f64::consts::PI - 0.1));
/// ```
#[inline]
pub fn decode_phase(phase: f64) -> bool {
    phase.cos() < 0.0
}

/// Wraps a phase to `(-π, π]`.
///
/// # Examples
///
/// ```
/// use magnon_core::encoding::wrap_phase;
///
/// assert!((wrap_phase(3.0 * std::f64::consts::PI) - std::f64::consts::PI).abs() < 1e-12);
/// assert!(wrap_phase(0.5).abs() - 0.5 < 1e-12);
/// ```
pub fn wrap_phase(phase: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut p = phase % two_pi;
    if p > PI {
        p -= two_pi;
    } else if p <= -PI {
        p += two_pi;
    }
    p
}

/// How a channel's output detector is positioned (paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReadoutMode {
    /// Detector an integer number of wavelengths from the last source:
    /// reads the function value.
    #[default]
    Direct,
    /// Detector an odd number of half wavelengths away: reads the
    /// complemented value.
    Inverted,
}

impl ReadoutMode {
    /// The detector offset in units of the channel wavelength for the
    /// `n`-th admissible position (`n = 0, 1, …`): `n+1` wavelengths for
    /// direct readout, `(2n+1)/2` wavelengths for inverted readout.
    ///
    /// # Examples
    ///
    /// ```
    /// use magnon_core::encoding::ReadoutMode;
    ///
    /// assert_eq!(ReadoutMode::Direct.offset_in_wavelengths(0), 1.0);
    /// assert_eq!(ReadoutMode::Direct.offset_in_wavelengths(2), 3.0);
    /// assert_eq!(ReadoutMode::Inverted.offset_in_wavelengths(0), 0.5);
    /// assert_eq!(ReadoutMode::Inverted.offset_in_wavelengths(1), 1.5);
    /// ```
    pub fn offset_in_wavelengths(self, n: usize) -> f64 {
        match self {
            ReadoutMode::Direct => (n + 1) as f64,
            ReadoutMode::Inverted => n as f64 + 0.5,
        }
    }

    /// Applies the readout convention to a decoded direct-logic bit.
    pub fn apply(self, direct_bit: bool) -> bool {
        match self {
            ReadoutMode::Direct => direct_bit,
            ReadoutMode::Inverted => !direct_bit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_encoding_paper_convention() {
        assert_eq!(phase_of(false), 0.0);
        assert_eq!(phase_of(true), PI);
    }

    #[test]
    fn decode_is_inverse_of_encode() {
        assert!(!decode_phase(phase_of(false)));
        assert!(decode_phase(phase_of(true)));
    }

    #[test]
    fn decode_tolerates_noise() {
        assert!(!decode_phase(0.4));
        assert!(!decode_phase(-0.4));
        assert!(decode_phase(PI - 0.4));
        assert!(decode_phase(-PI + 0.4));
    }

    #[test]
    fn decode_handles_any_branch() {
        assert!(decode_phase(PI + 2.0 * PI * 5.0));
        assert!(!decode_phase(-2.0 * PI * 3.0));
    }

    #[test]
    fn wrap_phase_range() {
        for p in [-10.0, -3.2, 0.0, 3.2, 10.0, 100.0] {
            let w = wrap_phase(p);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12, "wrap({p}) = {w}");
            // Same point on the circle.
            assert!((w.cos() - p.cos()).abs() < 1e-9);
            assert!((w.sin() - p.sin()).abs() < 1e-9);
        }
    }

    #[test]
    fn direct_offsets_are_integer_wavelengths() {
        for n in 0..5 {
            let off = ReadoutMode::Direct.offset_in_wavelengths(n);
            assert_eq!(off.fract(), 0.0);
            assert!(off >= 1.0);
        }
    }

    #[test]
    fn inverted_offsets_are_half_odd() {
        for n in 0..5 {
            let off = ReadoutMode::Inverted.offset_in_wavelengths(n);
            assert_eq!((off * 2.0) as u64 % 2, 1);
        }
    }

    #[test]
    fn apply_inverts() {
        assert!(ReadoutMode::Direct.apply(true));
        assert!(!ReadoutMode::Inverted.apply(true));
        assert!(ReadoutMode::Inverted.apply(false));
    }
}
