//! Gate cascading: feeding one gate's output waves into a following
//! gate without re-transduction.
//!
//! The paper (§III): the interference results "can be read by
//! transducers placed at O₁…Oₙ **or passed to potential following SW
//! gates**". This module models the second option analytically: the
//! complex output amplitude of stage k becomes one input wave of stage
//! k+1, accumulating further propagation decay. The key engineering
//! question is *amplitude divergence*: a majority output wave has
//! amplitude ≈ 1 or 3 sources depending on unanimity, so cascaded
//! stages see input-amplitude spreads that eventually corrupt the vote
//! — quantified by [`CascadeAnalysis`].

use crate::channel::ChannelPlan;
use crate::encoding::phase_of;
use crate::error::GateError;
use crate::inline::InlineLayout;
use crate::truth::LogicFunction;
use magnon_math::Complex64;

/// One stage's per-channel complex output.
#[derive(Debug, Clone, PartialEq)]
pub struct StageOutput {
    /// Complex wave amplitude per channel (units of one nominal source).
    pub amplitudes: Vec<Complex64>,
    /// Decoded logic per channel.
    pub bits: Vec<bool>,
}

/// Analytic cascade of identical majority stages on one waveguide
/// family.
///
/// Stage inputs: `fresh_inputs` waves are excited by transducers (clean
/// amplitude 1, phase from the bit) and one input is the *wave* arriving
/// from the previous stage (amplitude whatever it is).
#[derive(Debug, Clone)]
pub struct Cascade<'g> {
    plan: &'g ChannelPlan,
    layout: &'g InlineLayout,
    /// Propagation distance between consecutive stages in metres
    /// (integer wavelength multiples are enforced per channel at
    /// construction).
    stage_distance: Vec<f64>,
}

impl<'g> Cascade<'g> {
    /// Creates a cascade over the geometry of an existing gate.
    ///
    /// `stage_gap_wavelengths` is the whole number of wavelengths
    /// separating a stage's detector point from the next stage's
    /// interference point, per channel (phase-preserving hand-off).
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for a zero multiple or a
    /// mismatched length.
    pub fn new(
        plan: &'g ChannelPlan,
        layout: &'g InlineLayout,
        stage_gap_wavelengths: &[usize],
    ) -> Result<Self, GateError> {
        if stage_gap_wavelengths.len() != plan.len() {
            return Err(GateError::InputCountMismatch {
                expected: plan.len(),
                actual: stage_gap_wavelengths.len(),
            });
        }
        if stage_gap_wavelengths.contains(&0) {
            return Err(GateError::InvalidParameter {
                parameter: "stage_gap_wavelengths",
                value: 0.0,
            });
        }
        let stage_distance = plan
            .channels()
            .iter()
            .zip(stage_gap_wavelengths)
            .map(|(c, &g)| g as f64 * c.wavelength)
            .collect();
        Ok(Cascade {
            plan,
            layout,
            stage_distance,
        })
    }

    /// Evaluates one majority stage: `carried` is the wave arriving from
    /// the previous stage (or `None` for the first stage, where all
    /// inputs are fresh), `fresh_bits[j]` the transducer-driven inputs.
    ///
    /// Returns the stage's complex outputs at its detector plane.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InputCountMismatch`] when the fresh-input
    /// count does not complete the gate's operand count.
    pub fn stage(
        &self,
        carried: Option<&StageOutput>,
        fresh_bits: &[Vec<bool>],
    ) -> Result<StageOutput, GateError> {
        let n = self.plan.len();
        let m = self.layout.input_count();
        let expected_fresh = if carried.is_some() { m - 1 } else { m };
        if fresh_bits.len() != expected_fresh {
            return Err(GateError::InputCountMismatch {
                expected: expected_fresh,
                actual: fresh_bits.len(),
            });
        }
        for bits in fresh_bits {
            if bits.len() != n {
                return Err(GateError::WordWidthMismatch {
                    expected: n,
                    actual: bits.len(),
                });
            }
        }
        let mut amplitudes = Vec::with_capacity(n);
        let mut bits = Vec::with_capacity(n);
        for c in 0..n {
            let ch = &self.plan.channels()[c];
            let det = self.layout.detector_position(c)?;
            let mut z = Complex64::ZERO;
            // Fresh transducer inputs occupy the *last* operand slots;
            // the carried wave takes slot 0 (farthest source site).
            let slot_offset = if carried.is_some() { 1 } else { 0 };
            for (idx, bits_j) in fresh_bits.iter().enumerate() {
                let src = self.layout.source_position(c, idx + slot_offset)?;
                let dx = det - src;
                let decay = (-dx / ch.attenuation_length).exp();
                z += Complex64::from_polar(decay, ch.wavenumber * dx + phase_of(bits_j[c]));
            }
            if let Some(prev) = carried {
                // The carried wave travelled stage_distance from the
                // previous detector plane to this stage's slot-0 site,
                // then on to this detector.
                let src = self.layout.source_position(c, 0)?;
                let dx_inside = det - src;
                let total = self.stage_distance[c] + dx_inside;
                let decay = (-total / ch.attenuation_length).exp();
                let phase = ch.wavenumber * total;
                z += prev.amplitudes[c] * Complex64::from_polar(decay, phase);
            }
            bits.push(z.re < 0.0);
            amplitudes.push(z);
        }
        Ok(StageOutput { amplitudes, bits })
    }

    /// Runs a chain of majority stages and reports amplitude statistics.
    ///
    /// Stage 0 consumes `first_stage_bits` (m operands); each later
    /// stage consumes the carried wave plus `later_bits[k−1]` (m−1
    /// operands each).
    ///
    /// # Errors
    ///
    /// Propagates stage evaluation errors.
    pub fn run(
        &self,
        first_stage_bits: &[Vec<bool>],
        later_bits: &[Vec<Vec<bool>>],
    ) -> Result<CascadeAnalysis, GateError> {
        let mut outputs = Vec::with_capacity(later_bits.len() + 1);
        let first = self.stage(None, first_stage_bits)?;
        outputs.push(first);
        for fresh in later_bits {
            let prev = outputs.last().expect("at least one stage");
            let next = self.stage(Some(prev), fresh)?;
            outputs.push(next);
        }
        Ok(CascadeAnalysis { outputs })
    }

    /// The logic function realised per stage (always majority here).
    pub fn function(&self) -> LogicFunction {
        LogicFunction::Majority
    }
}

/// Amplitude/logic record of a cascade run.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeAnalysis {
    /// Per-stage outputs, stage 0 first.
    pub outputs: Vec<StageOutput>,
}

impl CascadeAnalysis {
    /// Number of stages evaluated.
    pub fn depth(&self) -> usize {
        self.outputs.len()
    }

    /// Decoded bits of the final stage.
    pub fn final_bits(&self) -> &[bool] {
        &self.outputs.last().expect("non-empty cascade").bits
    }

    /// The worst (smallest) output amplitude across channels at each
    /// stage — the signal-integrity budget of deep cascades.
    pub fn min_amplitude_per_stage(&self) -> Vec<f64> {
        self.outputs
            .iter()
            .map(|s| {
                s.amplitudes
                    .iter()
                    .map(|z| z.abs())
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelPlan, DispersionModel};
    use crate::encoding::ReadoutMode;
    use crate::inline::{InlineLayout, LayoutSpec};
    use magnon_math::constants::GHZ;
    use magnon_physics::waveguide::Waveguide;

    fn setup(n: usize) -> (ChannelPlan, InlineLayout) {
        let guide = Waveguide::paper_default().unwrap();
        let plan =
            ChannelPlan::uniform(&guide, DispersionModel::Exchange, n, 10.0 * GHZ, 10.0 * GHZ)
                .unwrap();
        let layout = InlineLayout::solve(
            &plan,
            3,
            LayoutSpec::default(),
            &vec![ReadoutMode::Direct; n],
        )
        .unwrap();
        (plan, layout)
    }

    #[test]
    fn construction_validation() {
        let (plan, layout) = setup(2);
        assert!(Cascade::new(&plan, &layout, &[1]).is_err());
        assert!(Cascade::new(&plan, &layout, &[1, 0]).is_err());
        assert!(Cascade::new(&plan, &layout, &[2, 3]).is_ok());
    }

    #[test]
    fn single_stage_matches_majority() {
        let (plan, layout) = setup(2);
        let cascade = Cascade::new(&plan, &layout, &[2, 2]).unwrap();
        // Channel 0: (0,1,0) -> 0; channel 1: (1,1,0) -> 1.
        let out = cascade
            .stage(
                None,
                &[vec![false, true], vec![true, true], vec![false, false]],
            )
            .unwrap();
        assert_eq!(out.bits, vec![false, true]);
    }

    #[test]
    fn carried_wave_votes_in_next_stage() {
        let (plan, layout) = setup(2);
        let cascade = Cascade::new(&plan, &layout, &[2, 2]).unwrap();
        // Stage 1: unanimous ones -> strong logic-1 wave.
        let s1 = cascade
            .stage(None, &[vec![true; 2], vec![true; 2], vec![true; 2]])
            .unwrap();
        assert_eq!(s1.bits, vec![true, true]);
        // Stage 2: carried 1-wave + fresh (1, 0): majority 1.
        let s2 = cascade
            .stage(Some(&s1), &[vec![true; 2], vec![false; 2]])
            .unwrap();
        assert_eq!(s2.bits, vec![true, true]);
        // Stage 2': carried 1-wave + fresh (0, 0): majority 0 — the
        // carried wave is outvoted even though it is 3 sources strong?
        // No: a unanimous carried wave carries ~3x amplitude, so it CAN
        // outvote two fresh zeros — the cascade fan-in hazard.
        let s2b = cascade
            .stage(Some(&s1), &[vec![false; 2], vec![false; 2]])
            .unwrap();
        assert_eq!(
            s2b.bits,
            vec![true, true],
            "unanimous carried wave dominates two fresh inputs (fan-in hazard)"
        );
    }

    #[test]
    fn split_carried_wave_is_outvoted() {
        let (plan, layout) = setup(2);
        let cascade = Cascade::new(&plan, &layout, &[2, 2]).unwrap();
        // Stage 1: 2-1 split -> weak logic-1 wave (~1 source).
        let s1 = cascade
            .stage(None, &[vec![true; 2], vec![true; 2], vec![false; 2]])
            .unwrap();
        assert_eq!(s1.bits, vec![true, true]);
        // Weak carried 1 + two fresh zeros: zeros win.
        let s2 = cascade
            .stage(Some(&s1), &[vec![false; 2], vec![false; 2]])
            .unwrap();
        assert_eq!(s2.bits, vec![false, false]);
    }

    #[test]
    fn run_reports_amplitude_decay() {
        let (plan, layout) = setup(2);
        let cascade = Cascade::new(&plan, &layout, &[3, 3]).unwrap();
        let analysis = cascade
            .run(
                &[vec![true; 2], vec![true; 2], vec![true; 2]],
                &[
                    vec![vec![true; 2], vec![true; 2]],
                    vec![vec![true; 2], vec![true; 2]],
                ],
            )
            .unwrap();
        assert_eq!(analysis.depth(), 3);
        assert_eq!(analysis.final_bits(), &[true, true]);
        let mins = analysis.min_amplitude_per_stage();
        assert_eq!(mins.len(), 3);
        assert!(mins.iter().all(|&a| a > 0.0));
    }

    #[test]
    fn operand_count_enforced() {
        let (plan, layout) = setup(2);
        let cascade = Cascade::new(&plan, &layout, &[2, 2]).unwrap();
        assert!(cascade.stage(None, &[vec![true; 2]]).is_err());
        let s1 = cascade
            .stage(None, &[vec![true; 2], vec![true; 2], vec![true; 2]])
            .unwrap();
        assert!(cascade.stage(Some(&s1), &[vec![true; 2]]).is_err());
        assert!(cascade
            .stage(Some(&s1), &[vec![true; 2], vec![true, false, true]])
            .is_err());
    }
}
