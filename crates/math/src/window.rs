//! Window functions for spectral analysis.
//!
//! Spectra of finite detector records leak energy between bins; the
//! windows here trade main-lobe width against side-lobe level. The
//! paper's FFT plots (Fig. 3) correspond to a rectangular window on a
//! steady-state record; [`Window::Hann`] is the default elsewhere in the
//! workspace because it suppresses inter-channel leakage when channel
//! frequencies do not align with FFT bins.

/// Spectral window shapes.
///
/// # Examples
///
/// ```
/// use magnon_math::window::Window;
///
/// let w = Window::Hann.coefficients(8);
/// assert_eq!(w.len(), 8);
/// assert!(w[0] < 1e-12); // Hann tapers to zero at the edges
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// No tapering (all ones).
    Rectangular,
    /// Hann (raised cosine); −31.5 dB first side lobe.
    #[default]
    Hann,
    /// Hamming; −42.7 dB first side lobe, non-zero edges.
    Hamming,
    /// Blackman; −58 dB first side lobe, widest main lobe.
    Blackman,
}

impl Window {
    /// Returns the `n` window coefficients.
    ///
    /// An empty vector is returned for `n == 0`; a single `1.0` for
    /// `n == 1`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let denom = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = i as f64 / denom;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * (2.0 * std::f64::consts::PI * x).cos(),
                    Window::Hamming => 0.54 - 0.46 * (2.0 * std::f64::consts::PI * x).cos(),
                    Window::Blackman => {
                        0.42 - 0.5 * (2.0 * std::f64::consts::PI * x).cos()
                            + 0.08 * (4.0 * std::f64::consts::PI * x).cos()
                    }
                }
            })
            .collect()
    }

    /// Multiplies `signal` by the window in place and returns the
    /// coherent gain (mean coefficient), which callers divide out to
    /// recover absolute amplitudes.
    ///
    /// # Examples
    ///
    /// ```
    /// use magnon_math::window::Window;
    ///
    /// let mut signal = vec![1.0; 64];
    /// let gain = Window::Hann.apply(&mut signal);
    /// assert!((gain - 0.5).abs() < 0.02);
    /// ```
    pub fn apply(self, signal: &mut [f64]) -> f64 {
        let coeffs = self.coefficients(signal.len());
        for (s, c) in signal.iter_mut().zip(&coeffs) {
            *s *= c;
        }
        if coeffs.is_empty() {
            1.0
        } else {
            coeffs.iter().sum::<f64>() / coeffs.len() as f64
        }
    }

    /// The coherent gain of the window at length `n` without applying it.
    pub fn coherent_gain(self, n: usize) -> f64 {
        let coeffs = self.coefficients(n);
        if coeffs.is_empty() {
            1.0
        } else {
            coeffs.iter().sum::<f64>() / coeffs.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(16)
            .iter()
            .all(|&c| c == 1.0));
        assert!((Window::Rectangular.coherent_gain(16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_is_symmetric_and_tapers_to_zero() {
        let w = Window::Hann.coefficients(33);
        assert!(w[0].abs() < 1e-12);
        assert!(w[32].abs() < 1e-12);
        assert!((w[16] - 1.0).abs() < 1e-12); // peak at centre
        for i in 0..16 {
            assert!((w[i] - w[32 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn hamming_edges_nonzero() {
        let w = Window::Hamming.coefficients(10);
        assert!((w[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_in_unit_range() {
        let w = Window::Blackman.coefficients(100);
        assert!(w.iter().all(|&c| (-1e-12..=1.0 + 1e-12).contains(&c)));
    }

    #[test]
    fn degenerate_lengths() {
        assert!(Window::Hann.coefficients(0).is_empty());
        assert_eq!(Window::Hann.coefficients(1), vec![1.0]);
        assert_eq!(Window::Blackman.coherent_gain(0), 1.0);
    }

    #[test]
    fn hann_gain_near_half() {
        let g = Window::Hann.coherent_gain(4096);
        assert!((g - 0.5).abs() < 1e-3);
    }

    #[test]
    fn apply_scales_signal_and_returns_gain() {
        let mut signal = vec![2.0; 128];
        let gain = Window::Hamming.apply(&mut signal);
        let mean: f64 = signal.iter().sum::<f64>() / 128.0;
        assert!((mean - 2.0 * gain).abs() < 1e-12);
    }

    #[test]
    fn default_is_hann() {
        assert_eq!(Window::default(), Window::Hann);
    }
}
