//! The wire protocol: hand-rolled, versioned, checksummed,
//! length-prefixed binary frames (the workspace's serde shim is a
//! no-op, so serialization is explicit — same conventions as
//! [`magnon_core::lut_store`]).
//!
//! # Frame layout
//!
//! ```text
//! length  4 B   LE u32 — byte count of everything after this prefix
//!               (type byte through checksum, inclusive); capped at
//!               MAX_FRAME_BYTES so a garbage prefix cannot make the
//!               reader allocate unbounded memory
//! type    1 B   frame discriminant (see below)
//! body    …     type-specific fields, all little-endian
//! check   8 B   FNV-1a 64 over type + body (LE u64)
//! ```
//!
//! | type | frame       | body                                                         |
//! |------|-------------|--------------------------------------------------------------|
//! | 1    | Hello       | magic `MGNP` (4 B), version u16                              |
//! | 2    | HelloAck    | version u16, gate count u32, then per gate: name len u16 + UTF-8, input count u8, word width u8, waveguide u64, lane u16 |
//! | 3    | Submit      | tag u64, gate u32, lane flag u8 (0/1), [lane u16], operand count u8, then per operand: width u8, bits u64 |
//! | 4    | Response    | tag u64, width u8, bits u64                                  |
//! | 5    | Error       | tag u64, code u8 ([`WireErrorCode`]), message len u16 + UTF-8 |
//! | 6    | RetryAfter  | tag u64, shard u32, hint µs u32 (1..=u32::MAX)               |
//!
//! Any truncation, length overrun, checksum mismatch, unknown type tag
//! or out-of-range field fails decoding with [`NetError::Protocol`];
//! the server answers one diagnostic error frame and closes that
//! connection without affecting others.
//!
//! # Version history
//!
//! * **v2** — the FDM revision: the hello-ack directory advertises each
//!   gate's waveguide id and frequency lane, and submit frames may pin
//!   an expected lane (the server rejects a mismatch with
//!   [`WireErrorCode::LaneMismatch`] instead of silently serving a
//!   repatterned gate). v1 peers are rejected at the hello; v1-shaped
//!   submit/hello-ack bodies fail decoding outright (the lane fields
//!   make them under- or over-long).
//! * **v1** — initial protocol (PR 4).

use crate::error::{NetError, WireErrorCode};
use magnon_core::word::Word;
use std::io::{Read, Write};
use std::time::Duration;

/// Magic the client opens its [`Frame::Hello`] with.
pub const NET_MAGIC: [u8; 4] = *b"MGNP";

/// Current protocol version (v2: FDM lanes in the directory and on
/// submit frames).
pub const NET_VERSION: u16 = 2;

/// Upper bound on the length prefix: no legal frame comes close (the
/// largest is a HelloAck for a big gate directory), and rejecting here
/// keeps a garbage prefix from turning into a huge allocation.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Most operand words one submit may carry (the gate models cap `m` at
/// 16 inputs).
pub const MAX_OPERANDS: usize = 16;

const MAX_NAME_BYTES: usize = 1024;
const MAX_MESSAGE_BYTES: usize = 512;

/// One gate in the server's directory, as advertised by the hello-ack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateInfo {
    /// Registration name (also the LUT file stem server-side).
    pub name: String,
    /// Operand words per request.
    pub input_count: u8,
    /// Channel count / word width.
    pub word_width: u8,
    /// The physical waveguide the gate is patterned on. Gates sharing
    /// a waveguide on distinct lanes serve concurrently via FDM.
    pub waveguide: u64,
    /// The gate's frequency lane on that waveguide.
    pub lane: u16,
}

/// A decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server, first frame on a connection.
    Hello {
        /// The client's protocol version.
        version: u16,
    },
    /// Server → client, answers the hello with the gate directory.
    HelloAck {
        /// The server's protocol version.
        version: u16,
        /// Registered gates, indexed by their wire id (position).
        gates: Vec<GateInfo>,
    },
    /// Client → server: evaluate `operands` on gate `gate`.
    Submit {
        /// Client-chosen tag echoed on the completion (out-of-order
        /// delivery is the norm).
        tag: u64,
        /// Index into the hello-ack gate directory.
        gate: u32,
        /// Optional frequency-lane pin: when set, the server verifies
        /// the target gate still occupies this lane and answers
        /// [`WireErrorCode::LaneMismatch`] otherwise — a guard against
        /// serving through a repatterned directory slot.
        lane: Option<u16>,
        /// The operand words.
        operands: Vec<Word>,
    },
    /// Server → client: the evaluation's output word.
    Response {
        /// The submit's tag.
        tag: u64,
        /// The decoded output word.
        word: Word,
    },
    /// Server → client: the request (or the connection, for `tag` 0
    /// handshake/framing problems) failed.
    Error {
        /// The submit's tag (0 when no request is attributable).
        tag: u64,
        /// Machine-readable failure class.
        code: WireErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Server → client: the scheduler queue is full; re-submit after
    /// the hint. This is how [`magnon_serve::ServeError::QueueFull`]
    /// backpressure propagates to the wire instead of stalling the
    /// connection's reader.
    RetryAfter {
        /// The refused submit's tag.
        tag: u64,
        /// The shard whose queue was full.
        shard: u32,
        /// Suggested backoff before re-submitting. The wire field is a
        /// u32 microsecond count: encoding clamps to
        /// `1..=u32::MAX` µs (hints beyond ~71.6 minutes saturate;
        /// sub-microsecond hints round up to 1 µs so a zero-length
        /// hint can never tell a client to retry immediately in a hot
        /// loop), and decoding rejects a zero hint as a protocol
        /// violation.
        hint: Duration,
    },
}

impl Frame {
    /// Serializes the frame, length prefix and checksum included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64);
        match self {
            Frame::Hello { version } => {
                body.push(1);
                body.extend_from_slice(&NET_MAGIC);
                body.extend_from_slice(&version.to_le_bytes());
            }
            Frame::HelloAck { version, gates } => {
                body.push(2);
                body.extend_from_slice(&version.to_le_bytes());
                body.extend_from_slice(&(gates.len() as u32).to_le_bytes());
                for gate in gates {
                    let name = truncate_utf8(&gate.name, MAX_NAME_BYTES);
                    body.extend_from_slice(&(name.len() as u16).to_le_bytes());
                    body.extend_from_slice(name.as_bytes());
                    body.push(gate.input_count);
                    body.push(gate.word_width);
                    body.extend_from_slice(&gate.waveguide.to_le_bytes());
                    body.extend_from_slice(&gate.lane.to_le_bytes());
                }
            }
            Frame::Submit {
                tag,
                gate,
                lane,
                operands,
            } => {
                body.push(3);
                body.extend_from_slice(&tag.to_le_bytes());
                body.extend_from_slice(&gate.to_le_bytes());
                match lane {
                    Some(lane) => {
                        body.push(1);
                        body.extend_from_slice(&lane.to_le_bytes());
                    }
                    None => body.push(0),
                }
                body.push(operands.len() as u8);
                for word in operands {
                    body.push(word.width() as u8);
                    body.extend_from_slice(&word.bits().to_le_bytes());
                }
            }
            Frame::Response { tag, word } => {
                body.push(4);
                body.extend_from_slice(&tag.to_le_bytes());
                body.push(word.width() as u8);
                body.extend_from_slice(&word.bits().to_le_bytes());
            }
            Frame::Error { tag, code, message } => {
                body.push(5);
                body.extend_from_slice(&tag.to_le_bytes());
                body.push(*code as u8);
                let msg = truncate_utf8(message, MAX_MESSAGE_BYTES);
                body.extend_from_slice(&(msg.len() as u16).to_le_bytes());
                body.extend_from_slice(msg.as_bytes());
            }
            Frame::RetryAfter { tag, shard, hint } => {
                body.push(6);
                body.extend_from_slice(&tag.to_le_bytes());
                body.extend_from_slice(&shard.to_le_bytes());
                // Clamp into the wire range 1..=u32::MAX µs: hints past
                // ~71.6 min saturate, and a zero-length hint rounds up
                // to 1 µs — the decoder treats a literal zero as a
                // protocol violation, so both ends agree it never
                // appears on the wire.
                let micros = hint.as_micros().clamp(1, u32::MAX as u128) as u32;
                body.extend_from_slice(&micros.to_le_bytes());
            }
        }
        let checksum = fnv1a(&body);
        let mut frame = Vec::with_capacity(4 + body.len() + 8);
        frame.extend_from_slice(&((body.len() + 8) as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&checksum.to_le_bytes());
        frame
    }

    /// Decodes one frame payload (the bytes *after* the length prefix:
    /// type + body + checksum).
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] for any malformed input.
    pub fn decode(payload: &[u8]) -> Result<Self, NetError> {
        // Checked splits all the way down: this is the path raw peer
        // bytes walk, so a malformed frame must become an error value,
        // never a panicking index.
        let Some((body, check)) = payload.split_last_chunk::<8>() else {
            return Err(NetError::protocol("frame shorter than type + checksum"));
        };
        let stored = u64::from_le_bytes(*check);
        if stored != fnv1a(body) {
            return Err(NetError::protocol("frame checksum mismatch"));
        }
        let Some((&frame_type, fields)) = body.split_first() else {
            return Err(NetError::protocol("frame shorter than type + checksum"));
        };
        let mut r = Cursor::new(fields);
        let frame = match frame_type {
            1 => {
                let magic = r.take(4)?;
                if magic != NET_MAGIC {
                    return Err(NetError::protocol("hello carries the wrong magic"));
                }
                Frame::Hello { version: r.u16()? }
            }
            2 => {
                let version = r.u16()?;
                let count = r.u32()? as usize;
                let mut gates = Vec::new();
                for _ in 0..count {
                    let name_len = r.u16()? as usize;
                    if name_len > MAX_NAME_BYTES {
                        return Err(NetError::protocol("gate name too long"));
                    }
                    let name = String::from_utf8(r.take(name_len)?.to_vec())
                        .map_err(|_| NetError::protocol("gate name is not UTF-8"))?;
                    let input_count = r.u8()?;
                    let word_width = r.u8()?;
                    let waveguide = r.u64()?;
                    let lane = r.u16()?;
                    gates.push(GateInfo {
                        name,
                        input_count,
                        word_width,
                        waveguide,
                        lane,
                    });
                }
                Frame::HelloAck { version, gates }
            }
            3 => {
                let tag = r.u64()?;
                let gate = r.u32()?;
                let lane = match r.u8()? {
                    0 => None,
                    1 => Some(r.u16()?),
                    flag => {
                        return Err(NetError::protocol(format!(
                            "submit lane flag must be 0 or 1, got {flag}"
                        )))
                    }
                };
                let count = r.u8()? as usize;
                if count == 0 || count > MAX_OPERANDS {
                    return Err(NetError::protocol(format!(
                        "operand count {count} outside 1..={MAX_OPERANDS}"
                    )));
                }
                let mut operands = Vec::with_capacity(count);
                for _ in 0..count {
                    operands.push(r.word()?);
                }
                Frame::Submit {
                    tag,
                    gate,
                    lane,
                    operands,
                }
            }
            4 => {
                let tag = r.u64()?;
                let word = r.word()?;
                Frame::Response { tag, word }
            }
            5 => {
                let tag = r.u64()?;
                let code = WireErrorCode::from_byte(r.u8()?)
                    .ok_or_else(|| NetError::protocol("unknown error code"))?;
                let len = r.u16()? as usize;
                if len > MAX_MESSAGE_BYTES {
                    return Err(NetError::protocol("error message too long"));
                }
                let message = String::from_utf8(r.take(len)?.to_vec())
                    .map_err(|_| NetError::protocol("error message is not UTF-8"))?;
                Frame::Error { tag, code, message }
            }
            6 => {
                let tag = r.u64()?;
                let shard = r.u32()?;
                let micros = r.u32()?;
                if micros == 0 {
                    // A zero hint would have clients retrying in a hot
                    // loop; the encoder never emits one (it clamps to
                    // ≥ 1 µs), so reject it like any other
                    // out-of-range field. The cap is u32::MAX µs —
                    // longer encoder-side hints arrive saturated, not
                    // wrapped.
                    return Err(NetError::protocol("zero-length retry-after hint"));
                }
                let hint = Duration::from_micros(micros as u64);
                Frame::RetryAfter { tag, shard, hint }
            }
            tag => return Err(NetError::protocol(format!("unknown frame type {tag}"))),
        };
        if r.remaining() != 0 {
            return Err(NetError::protocol("trailing bytes inside frame"));
        }
        Ok(frame)
    }
}

/// Writes one frame to `w` (no flush — callers batch pipelined submits
/// and flush before blocking on a read).
///
/// # Errors
///
/// [`NetError::Io`] when the write fails.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), NetError> {
    w.write_all(&frame.encode())
        .map_err(|e| NetError::io("write frame", e))
}

/// Reads one length-prefixed frame from `r` in a single shot.
///
/// Convenience for callers that own a blocking stream with no read
/// timeout (tests, probes). Streams with a read timeout must use
/// [`FrameReader`]: this function loses already-consumed bytes when a
/// timeout fires mid-frame.
///
/// # Errors
///
/// * [`NetError::Io`] for socket failures (including EOF mid-frame and
///   read timeouts — callers distinguish via `source.kind()`).
/// * [`NetError::Protocol`] for an oversized or undersized length
///   prefix and any decoding failure.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, NetError> {
    FrameReader::new().read_frame(r)
}

const MIN_FRAME_BYTES: usize = 1 + 8; // type byte + checksum

/// Resumable frame decoder: buffers partial reads internally, so a
/// `WouldBlock`/`TimedOut` between TCP segments preserves every byte
/// already consumed and the next call picks up mid-frame. Both the
/// server's connection readers and the client use one of these per
/// stream — retrying a bare [`read_frame`] after a timeout would lose
/// sync instead.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Payload length parsed from a complete prefix, once known.
    frame_len: Option<usize>,
}

impl FrameReader {
    /// A reader with no buffered bytes.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Reads until one whole frame is buffered, then decodes it.
    ///
    /// # Errors
    ///
    /// * [`NetError::Io`] for socket failures. A timeout
    ///   (`WouldBlock`/`TimedOut`) is resumable — call again with the
    ///   same reader. EOF with an empty buffer is a clean close
    ///   (`UnexpectedEof`); EOF with buffered bytes is a
    ///   [`NetError::Protocol`] violation (the peer quit mid-frame).
    /// * [`NetError::Protocol`] for a bad length prefix or any
    ///   decoding failure.
    pub fn read_frame(&mut self, r: &mut impl Read) -> Result<Frame, NetError> {
        loop {
            if self.frame_len.is_none() {
                if let Some(prefix) = self.buf.first_chunk::<4>() {
                    let len = u32::from_le_bytes(*prefix) as usize;
                    if !(MIN_FRAME_BYTES..=MAX_FRAME_BYTES).contains(&len) {
                        return Err(NetError::protocol(format!(
                            "frame length {len} outside {MIN_FRAME_BYTES}..={MAX_FRAME_BYTES}"
                        )));
                    }
                    self.frame_len = Some(len);
                }
            }
            if let Some(len) = self.frame_len {
                if let Some(payload) = self.buf.get(4..4 + len) {
                    let frame = Frame::decode(payload)?;
                    self.buf.drain(..4 + len);
                    self.frame_len = None;
                    return Ok(frame);
                }
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return Err(NetError::io(
                            "read frame",
                            std::io::Error::new(
                                std::io::ErrorKind::UnexpectedEof,
                                "connection closed",
                            ),
                        ));
                    }
                    return Err(NetError::protocol(
                        "connection closed mid-frame (truncated frame)",
                    ));
                }
                // A conforming `Read` never returns more than the
                // buffer holds; the checked take keeps a broken one
                // from panicking this connection's thread.
                Ok(n) => self.buf.extend_from_slice(chunk.get(..n).unwrap_or(&chunk)),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::io("read frame", e)),
            }
        }
    }
}

/// Cuts `s` to at most `max` bytes on a char boundary.
fn truncate_utf8(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    s.get(..end).unwrap_or("")
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Bounds-checked cursor over a frame body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        let truncated = || NetError::protocol("unexpected end of frame");
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or_else(truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// `take(N)` as a fixed-size array, for the integer decoders. The
    /// conversion cannot fail after a successful take; the error arm
    /// exists so the decode path holds no panicking conversions.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], NetError> {
        self.take(N)?
            .try_into()
            .map_err(|_| NetError::protocol("unexpected end of frame"))
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        let [byte] = self.array::<1>()?;
        Ok(byte)
    }

    fn u16(&mut self) -> Result<u16, NetError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// A wire word: width byte + bits. Strict — bits above the declared
    /// width are rejected here rather than silently truncated
    /// ([`Word::from_bits`] masks; the wire must not), so a corrupted
    /// operand cannot quietly evaluate to something plausible.
    fn word(&mut self) -> Result<Word, NetError> {
        let width = self.u8()? as usize;
        let bits = self.u64()?;
        if width < 64 && bits >> width != 0 {
            return Err(NetError::protocol(format!(
                "bad word on the wire: bits 0x{bits:X} overflow the declared {width}-bit width"
            )));
        }
        Word::from_bits(bits, width)
            .map_err(|e| NetError::protocol(format!("bad word on the wire: {e}")))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let encoded = frame.encode();
        let len = u32::from_le_bytes(encoded[..4].try_into().unwrap()) as usize;
        assert_eq!(len, encoded.len() - 4);
        assert_eq!(Frame::decode(&encoded[4..]).unwrap(), frame);
        // And through the streaming path.
        let mut cursor = std::io::Cursor::new(&encoded);
        assert_eq!(read_frame(&mut cursor).unwrap(), frame);
    }

    #[test]
    fn every_frame_type_roundtrips() {
        roundtrip(Frame::Hello {
            version: NET_VERSION,
        });
        roundtrip(Frame::HelloAck {
            version: NET_VERSION,
            gates: vec![
                GateInfo {
                    name: "maj3_w8_0".into(),
                    input_count: 3,
                    word_width: 8,
                    waveguide: 0,
                    lane: 0,
                },
                GateInfo {
                    name: "xor2_w8_0_lane1".into(),
                    input_count: 2,
                    word_width: 8,
                    waveguide: 0,
                    lane: 1,
                },
            ],
        });
        roundtrip(Frame::Submit {
            tag: 0xDEAD_BEEF,
            gate: 1,
            lane: None,
            operands: vec![Word::from_u8(0x5A), Word::from_bits(0x1FFF, 16).unwrap()],
        });
        roundtrip(Frame::Submit {
            tag: 0xDEAD_BEF0,
            gate: 1,
            lane: Some(3),
            operands: vec![Word::from_u8(0x5A)],
        });
        roundtrip(Frame::Response {
            tag: 7,
            word: Word::from_bits(u64::MAX, 64).unwrap(),
        });
        roundtrip(Frame::Error {
            tag: 9,
            code: WireErrorCode::Gate,
            message: "gate expects 3 input words, got 1".into(),
        });
        roundtrip(Frame::RetryAfter {
            tag: 3,
            shard: 1,
            hint: Duration::from_micros(250),
        });
    }

    #[test]
    fn corruption_truncation_and_garbage_are_rejected() {
        let good = Frame::Submit {
            tag: 1,
            gate: 0,
            lane: None,
            operands: vec![Word::from_u8(1), Word::from_u8(2), Word::from_u8(3)],
        }
        .encode();
        // Flip one payload byte: checksum catches it.
        let mut bad = good.clone();
        bad[9] ^= 0xFF;
        assert!(Frame::decode(&bad[4..]).is_err());
        // Truncated payload: EOF mid-frame is a framing violation.
        let mut cursor = std::io::Cursor::new(&good[..good.len() - 3]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::Protocol { reason }) if reason.contains("mid-frame")
        ));
        // Length prefix larger than the cap.
        let mut oversized = good.clone();
        oversized[..4].copy_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(&oversized);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::Protocol { .. })
        ));
        // Length prefix too small to hold type + checksum.
        let mut tiny = good.clone();
        tiny[..4].copy_from_slice(&3u32.to_le_bytes());
        let mut cursor = std::io::Cursor::new(&tiny);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::Protocol { .. })
        ));
        // Unknown frame type (re-checksummed so only the type is bad).
        let mut body = good[4..good.len() - 8].to_vec();
        body[0] = 42;
        let mut retagged = body.clone();
        retagged.extend_from_slice(&fnv1a(&body).to_le_bytes());
        assert!(matches!(
            Frame::decode(&retagged),
            Err(NetError::Protocol { reason }) if reason.contains("unknown frame type")
        ));
        // Plain garbage (an HTTP request, say) fails the checksum.
        let garbage = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n";
        assert!(Frame::decode(garbage).is_err());
    }

    #[test]
    fn out_of_range_fields_are_rejected() {
        // A word whose bits overflow its width.
        let mut body = vec![4u8]; // Response
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(4); // width 4…
        body.extend_from_slice(&0xFFu64.to_le_bytes()); // …but 8 bits set
        let mut payload = body.clone();
        payload.extend_from_slice(&fnv1a(&body).to_le_bytes());
        assert!(matches!(
            Frame::decode(&payload),
            Err(NetError::Protocol { reason }) if reason.contains("bad word")
        ));
        // Zero operands.
        let mut body = vec![3u8];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.push(0); // lane flag: none
        body.push(0); // operand count 0
        let mut payload = body.clone();
        payload.extend_from_slice(&fnv1a(&body).to_le_bytes());
        assert!(Frame::decode(&payload).is_err());
        // Hello with the wrong magic.
        let mut body = vec![1u8];
        body.extend_from_slice(b"HTTP");
        body.extend_from_slice(&NET_VERSION.to_le_bytes());
        let mut payload = body.clone();
        payload.extend_from_slice(&fnv1a(&body).to_le_bytes());
        assert!(matches!(
            Frame::decode(&payload),
            Err(NetError::Protocol { reason }) if reason.contains("magic")
        ));
        // Trailing bytes inside an otherwise valid frame.
        let good = Frame::Hello {
            version: NET_VERSION,
        }
        .encode();
        let mut body = good[4..good.len() - 8].to_vec();
        body.push(0);
        let mut payload = body.clone();
        payload.extend_from_slice(&fnv1a(&body).to_le_bytes());
        assert!(matches!(
            Frame::decode(&payload),
            Err(NetError::Protocol { reason }) if reason.contains("trailing")
        ));
    }

    #[test]
    fn retry_after_hints_saturate_and_reject_zero() {
        // Exactly at the cap: round-trips unchanged.
        roundtrip(Frame::RetryAfter {
            tag: 1,
            shard: 0,
            hint: Duration::from_micros(u32::MAX as u64),
        });
        // Beyond the cap: encoding saturates to u32::MAX µs instead of
        // wrapping (one µs past the boundary and a huge hint both land
        // on the cap).
        for big in [
            Duration::from_micros(u32::MAX as u64 + 1),
            Duration::from_secs(86_400),
        ] {
            let encoded = Frame::RetryAfter {
                tag: 2,
                shard: 0,
                hint: big,
            }
            .encode();
            match Frame::decode(&encoded[4..]).unwrap() {
                Frame::RetryAfter { hint, .. } => {
                    assert_eq!(hint, Duration::from_micros(u32::MAX as u64));
                }
                other => panic!("expected RetryAfter, got {other:?}"),
            }
        }
        // A zero-length hint never reaches the wire: encode rounds it
        // up to 1 µs…
        let encoded = Frame::RetryAfter {
            tag: 3,
            shard: 0,
            hint: Duration::ZERO,
        }
        .encode();
        match Frame::decode(&encoded[4..]).unwrap() {
            Frame::RetryAfter { hint, .. } => assert_eq!(hint, Duration::from_micros(1)),
            other => panic!("expected RetryAfter, got {other:?}"),
        }
        // …and a crafted zero hint is rejected by decode.
        let mut body = vec![6u8];
        body.extend_from_slice(&3u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        let mut payload = body.clone();
        payload.extend_from_slice(&fnv1a(&body).to_le_bytes());
        assert!(matches!(
            Frame::decode(&payload),
            Err(NetError::Protocol { reason }) if reason.contains("zero-length")
        ));
    }

    #[test]
    fn v1_shaped_submit_frames_are_rejected() {
        // A protocol-v1 submit had no lane flag: tag, gate, operand
        // count, operands. Re-checksummed so only the layout is old.
        let mut body = vec![3u8];
        body.extend_from_slice(&9u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.push(3); // v1 operand count — v2 reads this as a lane flag
        for byte in [1u8, 2, 3] {
            body.push(8);
            body.extend_from_slice(&(byte as u64).to_le_bytes());
        }
        let mut payload = body.clone();
        payload.extend_from_slice(&fnv1a(&body).to_le_bytes());
        assert!(matches!(
            Frame::decode(&payload),
            Err(NetError::Protocol { reason }) if reason.contains("lane flag")
        ));
        // And a malformed v2 lane flag is rejected the same way.
        let mut body = vec![3u8];
        body.extend_from_slice(&9u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.push(2); // invalid flag
        body.push(1);
        body.push(8);
        body.extend_from_slice(&1u64.to_le_bytes());
        let mut payload = body.clone();
        payload.extend_from_slice(&fnv1a(&body).to_le_bytes());
        assert!(Frame::decode(&payload).is_err());
    }

    /// Yields one byte per read, with a `WouldBlock` before every byte
    /// — the worst-case slow link for a resumable reader.
    struct Trickle {
        bytes: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl std::io::Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.bytes.len() {
                return Ok(0);
            }
            if !self.ready {
                self.ready = true;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.ready = false;
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_resumes_across_timeouts_and_split_reads() {
        let frame = Frame::Submit {
            tag: 77,
            gate: 2,
            lane: Some(1),
            operands: vec![Word::from_u8(1), Word::from_u8(2), Word::from_u8(3)],
        };
        let mut trickle = Trickle {
            bytes: frame.encode(),
            pos: 0,
            ready: false,
        };
        let mut reader = FrameReader::new();
        // Every other call times out mid-frame; the buffered prefix
        // bytes must survive so the stream never desyncs.
        let decoded = loop {
            match reader.read_frame(&mut trickle) {
                Ok(frame) => break frame,
                Err(NetError::Io { source, .. })
                    if source.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("resumable read must not fail: {e}"),
            }
        };
        assert_eq!(decoded, frame);
    }

    #[test]
    fn frame_reader_separates_pipelined_frames_and_flags_mid_frame_eof() {
        let a = Frame::Response {
            tag: 1,
            word: Word::from_u8(0xAB),
        };
        let b = Frame::RetryAfter {
            tag: 2,
            shard: 0,
            hint: Duration::from_micros(50),
        };
        // Both frames plus a truncated third arrive in one burst.
        let mut bytes = a.encode();
        bytes.extend_from_slice(&b.encode());
        let truncated = Frame::Response {
            tag: 3,
            word: Word::from_u8(0xCD),
        }
        .encode();
        bytes.extend_from_slice(&truncated[..truncated.len() - 4]);
        let mut cursor = std::io::Cursor::new(bytes);
        let mut reader = FrameReader::new();
        assert_eq!(reader.read_frame(&mut cursor).unwrap(), a);
        assert_eq!(reader.read_frame(&mut cursor).unwrap(), b);
        // EOF with a partial frame buffered is a protocol violation…
        assert!(matches!(
            reader.read_frame(&mut cursor),
            Err(NetError::Protocol { reason }) if reason.contains("mid-frame")
        ));
        // …while EOF at a frame boundary is a clean close.
        let mut clean = std::io::Cursor::new(a.encode());
        let mut reader = FrameReader::new();
        assert_eq!(reader.read_frame(&mut clean).unwrap(), a);
        assert!(matches!(
            reader.read_frame(&mut clean),
            Err(NetError::Io { source, .. })
                if source.kind() == std::io::ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn long_error_messages_truncate_on_char_boundaries() {
        let frame = Frame::Error {
            tag: 0,
            code: WireErrorCode::Protocol,
            message: "é".repeat(600), // 1200 bytes of 2-byte chars
        };
        let encoded = frame.encode();
        match Frame::decode(&encoded[4..]).unwrap() {
            Frame::Error { message, .. } => {
                assert!(message.len() <= MAX_MESSAGE_BYTES);
                assert!(message.chars().all(|c| c == 'é'));
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }
}
