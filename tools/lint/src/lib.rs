//! The workspace invariant linter: project-specific static rules the
//! compiler cannot express — and the shared lexing layer the semantic
//! analyzer (`tools/analyze`) builds its call graph on.
//!
//! Run the linter from anywhere in the repo:
//!
//! ```text
//! cargo run -p magnon-lint            # exit 0 = clean, 1 = findings
//! cargo run -p magnon-lint -- --root /path/to/workspace
//! ```
//!
//! # Rules
//!
//! | id                    | scope                 | requirement |
//! |-----------------------|-----------------------|-------------|
//! | `safety-comment`      | all crates/tools      | every `unsafe` carries a `// SAFETY:` comment on the same line or within 5 lines above |
//! | `ordering-rationale`  | all crates/tools      | every non-`SeqCst` atomic ordering carries an `// ordering:` rationale on the same line or within 8 lines above |
//! | `hot-path-sleep`      | declared hot files    | no `thread::sleep` on the serving hot path (the PR 5 client read-path stall class) |
//! | `drain-path-panic`    | declared drain files  | no `unwrap`/`expect`/`panic!`-family macros or slice indexing in the serve drain and net decode paths |
//! | `std-sync-import`     | façade-ported crates  | no direct `std::sync`/`std::thread`/`std::time::Instant` — sync primitives go through `magnon_core::sync` so `cfg(mcheck)` can instrument them |
//!
//! # Mechanics
//!
//! The scanner is line-based but lexes enough Rust to be trustworthy:
//! string literals (plain, raw, byte), char literals and comments are
//! stripped from the *code* view before token rules run, and comment
//! text is kept as a separate view for the `SAFETY:`/`ordering:`
//! rationale checks. `#[cfg(test)]` items (whole `mod tests { … }`
//! blocks included) are skipped entirely — test code may unwrap.
//!
//! A finding can be waived where the invariant genuinely does not
//! apply, with a comment on the same line or the two lines above:
//!
//! ```text
//! // lint: allow(drain-path-panic) — deliberate crash on corrupt index
//! ```
//!
//! Waivers are themselves greppable, so the escape hatch stays
//! auditable. The semantic analyzer reuses the same syntax under its
//! own tool tag (`// analyze: allow(can-panic) — reason`) and
//! *requires* the reason text; [`waiver_reason`] is the shared parser.

use std::fmt;
use std::path::{Path, PathBuf};

/// Files where blocking the thread stalls unrelated requests: the
/// serve drain/submit path and the net client's shared read path
/// (`magnon-net/src/server.rs` is deliberately absent — its accept
/// loop and writer pump own their threads and may back off).
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/serve/src/scheduler.rs",
    "crates/serve/src/request.rs",
    "crates/serve/src/telemetry.rs",
    "crates/serve/src/pipeline.rs",
    "crates/serve/src/dispatch.rs",
    "crates/net/src/client.rs",
];

/// Files whose failure mode must be an error value, not a panic: a
/// panic in the serve drain kills a worker shard; a panic in frame
/// decoding lets one malformed peer kill a connection thread.
pub const DRAIN_PATH_FILES: &[&str] = &[
    "crates/serve/src/scheduler.rs",
    "crates/net/src/protocol.rs",
];

/// Crates that must not import `std::sync`/`std::thread`/
/// `std::time::Instant` directly: the façade-ported serving crates
/// (dodging `magnon_core::sync` dodges `cfg(mcheck)` instrumentation)
/// plus the crates the scheduler and compiler lean on — `crates/check`
/// (whose *modeled* world must go through the façade; its own
/// controller lock is the waived exception), `crates/compiler` and
/// `crates/circuits` (pure data-structure crates where a stray
/// `Instant` or ad-hoc thread would be a design smell and invisible to
/// the model checker).
pub const FACADE_DIRS: &[&str] = &[
    "crates/serve/src",
    "crates/net/src",
    "crates/check/src",
    "crates/compiler/src",
    "crates/circuits/src",
];

/// Directory names never scanned (vendored code, build output, test
/// trees — test code is exempt from these rules wholesale).
pub const SKIP_DIRS: &[&str] = &["target", "vendor", "tests", "benches", "examples"];

/// The lint rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    SafetyComment,
    OrderingRationale,
    HotPathSleep,
    DrainPathPanic,
    StdSyncImport,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::OrderingRationale => "ordering-rationale",
            Rule::HotPathSleep => "hot-path-sleep",
            Rule::DrainPathPanic => "drain-path-panic",
            Rule::StdSyncImport => "std-sync-import",
        }
    }

    pub fn requirement(self) -> &'static str {
        match self {
            Rule::SafetyComment => {
                "`unsafe` needs a `// SAFETY:` comment on the same line or within 5 lines above"
            }
            Rule::OrderingRationale => {
                "non-SeqCst atomic ordering needs an `// ordering:` rationale on the same line \
                 or within 8 lines above"
            }
            Rule::HotPathSleep => {
                "no `thread::sleep` in declared hot-path modules — a sleeping worker stalls \
                 every request behind it (park on a channel or condvar instead)"
            }
            Rule::DrainPathPanic => {
                "no `unwrap`/`expect`/panic macros/slice indexing in drain or decode paths — \
                 return an error so one bad request cannot kill the worker"
            }
            Rule::StdSyncImport => {
                "no direct `std::sync`/`std::thread`/`std::time::Instant` in façade-ported \
                 crates — import through `magnon_core::sync` so `cfg(mcheck)` instruments it"
            }
        }
    }
}

/// One violation, addressable as `file:line`.
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: Rule,
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file,
            self.line,
            self.rule.id(),
            self.rule.requirement(),
            self.excerpt.trim()
        )
    }
}

// ---------------------------------------------------------------------------
// Lexing: split each source line into a code view and a comment view.
// ---------------------------------------------------------------------------

/// Multi-line lexer state carried across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Normal,
    /// Inside `/* … */`, with nesting depth (Rust block comments nest).
    BlockComment(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside `r##"…"##` with the given hash count.
    RawStr(u8),
}

/// One source line split into what the compiler executes and what the
/// human wrote beside it.
#[derive(Debug, Default, Clone)]
pub struct LineViews {
    /// The line with strings, chars and comments removed.
    pub code: String,
    /// All comment text on the line (line + block comments).
    pub comment: String,
}

/// Strips strings and comments, line by line, carrying state across
/// line breaks (multi-line strings and block comments).
pub struct Stripper {
    state: LexState,
}

impl Default for Stripper {
    fn default() -> Self {
        Self::new()
    }
}

impl Stripper {
    pub fn new() -> Self {
        Stripper {
            state: LexState::Normal,
        }
    }

    pub fn strip(&mut self, line: &str) -> LineViews {
        let mut views = LineViews::default();
        let bytes: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            match self.state {
                LexState::BlockComment(depth) => {
                    if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        i += 2;
                        self.state = if depth > 1 {
                            LexState::BlockComment(depth - 1)
                        } else {
                            LexState::Normal
                        };
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        i += 2;
                        self.state = LexState::BlockComment(depth + 1);
                    } else {
                        views.comment.push(bytes[i]);
                        i += 1;
                    }
                }
                LexState::Str => {
                    if bytes[i] == '\\' {
                        i += 2;
                    } else if bytes[i] == '"' {
                        self.state = LexState::Normal;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if bytes[i] == '"' {
                        let mut seen = 0u8;
                        while seen < hashes && bytes.get(i + 1 + seen as usize) == Some(&'#') {
                            seen += 1;
                        }
                        if seen == hashes {
                            i += 1 + hashes as usize;
                            self.state = LexState::Normal;
                            continue;
                        }
                    }
                    i += 1;
                }
                LexState::Normal => {
                    let c = bytes[i];
                    let prev_ident =
                        i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == '_');
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        views.comment.extend(&bytes[i + 2..]);
                        break;
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        self.state = LexState::BlockComment(1);
                        i += 2;
                    } else if c == '"' {
                        self.state = LexState::Str;
                        i += 1;
                    } else if (c == 'r' || c == 'b') && !prev_ident {
                        // r"…", r#"…"#, b"…", br"…", br#"…"#.
                        let mut j = i + 1;
                        if c == 'b' && bytes.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u8;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            self.state = if hashes > 0 {
                                LexState::RawStr(hashes)
                            } else if c == 'r' || (c == 'b' && j > i + 1) {
                                LexState::RawStr(0)
                            } else {
                                LexState::Str
                            };
                            i = j + 1;
                        } else {
                            views.code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal or lifetime. A char literal closes
                        // with a quote within a few chars; a lifetime
                        // does not.
                        if bytes.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to closing quote.
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            i = j + 1;
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            i += 3;
                        } else {
                            // Lifetime: keep the quote in the code view
                            // so `&'a [u8]` stays recognizable as a
                            // type, not an index expression.
                            views.code.push('\'');
                            i += 1;
                        }
                    } else {
                        views.code.push(c);
                        i += 1;
                    }
                }
            }
        }
        views
    }
}

/// Strips a whole source into per-line views (fresh lexer state).
pub fn split_views(source: &str) -> Vec<LineViews> {
    let mut stripper = Stripper::new();
    source.lines().map(|l| stripper.strip(l)).collect()
}

// ---------------------------------------------------------------------------
// Token helpers on the stripped code view.
// ---------------------------------------------------------------------------

pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Whether `code` contains `word` with non-identifier characters on
/// both sides.
pub fn has_word(code: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok =
            start == 0 || !is_ident_char(code[..start].chars().next_back().unwrap_or(' '));
        let after_ok =
            end >= code.len() || !is_ident_char(code[end..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Whether `code` indexes a slice/array/map: a `[` whose preceding
/// non-space token ends an expression (an identifier, `)`, `]`, `?`).
/// Attribute `#[…]`, macro `vec![…]`, array types `[u8; 4]`, slice
/// patterns, lifetimes (`&'a [u8]`) and type-position keywords
/// (`&mut [u8]`) all read differently and do not match.
pub fn has_slice_index(code: &str) -> bool {
    const TYPE_KEYWORDS: &[&str] = &[
        "mut", "dyn", "impl", "as", "in", "where", "const", "static", "return", "break", "else",
        "let", "match", "ref",
    ];
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let mut j = i;
        while j > 0 && chars[j - 1].is_whitespace() {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let p = chars[j - 1];
        if p == ')' || p == ']' || p == '?' {
            return true;
        }
        if is_ident_char(p) {
            let mut s = j - 1;
            while s > 0 && is_ident_char(chars[s - 1]) {
                s -= 1;
            }
            let ident: String = chars[s..j].iter().collect();
            let lifetime = s > 0 && chars[s - 1] == '\'';
            if !lifetime && !TYPE_KEYWORDS.contains(&ident.as_str()) {
                return true;
            }
        }
    }
    false
}

pub const NON_SEQCST: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

pub const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect("];
pub const PANIC_MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];
pub const STD_SYNC_TOKENS: &[&str] = &["std::sync::", "std::thread", "std::time::Instant"];

// ---------------------------------------------------------------------------
// Per-file lint driver.
// ---------------------------------------------------------------------------

/// How a file's path classifies it for the scoped rules.
#[derive(Debug, Clone, Copy, Default)]
struct FileClass {
    hot_path: bool,
    drain_path: bool,
    facade: bool,
}

fn classify(rel: &str) -> FileClass {
    FileClass {
        hot_path: HOT_PATH_FILES.contains(&rel),
        drain_path: DRAIN_PATH_FILES.contains(&rel),
        facade: FACADE_DIRS.iter().any(|d| rel.starts_with(d)),
    }
}

/// Marks every line belonging to a `#[cfg(test)]` item (attribute line
/// through the end of the item's braces, or its `;` for brace-less
/// items). Brace counting runs on the stripped code view, so braces in
/// strings and comments cannot desynchronize it.
pub fn cfg_test_mask(lines: &[LineViews]) -> Vec<bool> {
    cfg_mask(lines, &["#[cfg(test)]", "#[cfg(all(test"])
}

/// [`cfg_test_mask`] generalized over the attribute markers that start
/// a masked item — the semantic analyzer also masks `#[cfg(mcheck)]`
/// items, which exist only in instrumented builds and must not appear
/// in the production call graph.
pub fn cfg_mask(lines: &[LineViews], markers: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !markers.iter().any(|m| lines[i].code.contains(m)) {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = true;
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            if !opened && j > i && lines[j].code.contains(';') {
                // A brace-less item (`use …;`, `fn f();`) ends here.
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// Whether line `idx` (0-based) carries a waiver for `rule` on itself
/// or the two lines above.
fn waived(lines: &[LineViews], idx: usize, rule: Rule) -> bool {
    waiver_reason(lines, idx, "lint", rule.id()).is_some()
}

/// The shared waiver parser: scans the comments of line `idx` and the
/// two lines above for `<tool>: allow(<rule>)`. Returns the reason
/// text following the closing paren (separator punctuation trimmed) —
/// `Some("")` for a waiver that names no reason, `None` for no waiver.
/// Both the linter (`lint:` tag, reason optional) and the semantic
/// analyzer (`analyze:` tag, reason mandatory) resolve waivers here,
/// so the two tools cannot drift on placement rules.
pub fn waiver_reason(lines: &[LineViews], idx: usize, tool: &str, rule: &str) -> Option<String> {
    let needle = format!("{tool}: allow({rule})");
    for l in &lines[idx.saturating_sub(2)..=idx.min(lines.len() - 1)] {
        if let Some(pos) = l.comment.find(&needle) {
            let reason = l.comment[pos + needle.len()..]
                .trim_start_matches(|c: char| {
                    c.is_whitespace() || c == '—' || c == '-' || c == ':' || c == '–'
                })
                .trim()
                .to_string();
            return Some(reason);
        }
    }
    None
}

/// Whether any comment in the `window` lines ending at `idx` (same
/// line included) contains `marker`.
fn rationale_nearby(lines: &[LineViews], idx: usize, window: usize, marker: &str) -> bool {
    lines[idx.saturating_sub(window)..=idx]
        .iter()
        .any(|l| l.comment.contains(marker))
}

/// Whether a fully-expanded `use` group path hits the façade ban list.
/// `::self` re-imports the module itself; a trailing `::` is an open
/// prefix whose items are judged individually.
fn banned_group_path(path: &str) -> bool {
    let p = path.strip_suffix("::self").unwrap_or(path);
    let p = p.trim_end_matches(':');
    ["std::sync", "std::thread", "std::time::Instant"]
        .iter()
        .any(|b| p == *b || (p.starts_with(b) && p[b.len()..].starts_with("::")))
}

/// Lines (0-based) where a brace-grouped `use std::…{…}` import pulls
/// in a banned façade path. Grouped forms — `use std::{thread, io}`,
/// `use std::time::{Duration, Instant}` — evade the plain
/// [`STD_SYNC_TOKENS`] scan because the banned path never appears
/// contiguously; this pass expands group prefixes (nested groups and
/// `as` renames included) across line boundaries and flags the line
/// each offending leaf lands on.
pub fn grouped_std_import_lines(lines: &[LineViews]) -> Vec<usize> {
    let mut flagged: Vec<usize> = Vec::new();
    let mut in_item = false;
    let mut stack: Vec<String> = Vec::new();
    let mut seg = String::new();
    let mut alias_skip = false;
    for (idx, line) in lines.iter().enumerate() {
        let mut code: &str = &line.code;
        'line: loop {
            if !in_item {
                let Some(pos) = code.find("use std::") else {
                    break 'line;
                };
                let boundary = code[..pos]
                    .chars()
                    .next_back()
                    .is_none_or(|c| !is_ident_char(c));
                code = &code[pos + "use std::".len()..];
                if boundary {
                    in_item = true;
                    stack.clear();
                    seg = String::from("std::");
                    alias_skip = false;
                }
                continue 'line;
            }
            let mut resume: Option<usize> = None;
            for (ci, ch) in code.char_indices() {
                match ch {
                    '{' => {
                        stack.push(seg.clone());
                        alias_skip = false;
                    }
                    '}' | ',' | ';' => {
                        if !stack.is_empty() && banned_group_path(&seg) {
                            flagged.push(idx);
                        }
                        alias_skip = false;
                        match ch {
                            '}' => seg = stack.pop().unwrap_or_else(|| String::from("std::")),
                            ',' => {
                                seg = stack
                                    .last()
                                    .cloned()
                                    .unwrap_or_else(|| String::from("std::"))
                            }
                            _ => {
                                in_item = false;
                                resume = Some(ci + 1);
                            }
                        }
                        if resume.is_some() {
                            break;
                        }
                    }
                    c if (is_ident_char(c) || c == ':') && !alias_skip => seg.push(c),
                    c if c.is_whitespace()
                        && seg.chars().next_back().is_some_and(is_ident_char) =>
                    {
                        alias_skip = true;
                    }
                    _ => {}
                }
            }
            match resume {
                Some(r) => code = &code[r..],
                None => break 'line,
            }
        }
    }
    flagged.dedup();
    flagged
}

/// Lints one file's source. `rel` is the workspace-relative path with
/// forward slashes (it selects the scoped rules).
pub fn lint_source(rel: &str, source: &str) -> Vec<Finding> {
    let class = classify(rel);
    let lines = split_views(source);
    let test_mask = cfg_test_mask(&lines);
    let grouped_std = if class.facade {
        grouped_std_import_lines(&lines)
    } else {
        Vec::new()
    };
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();
    let report = |idx: usize, rule: Rule, findings: &mut Vec<Finding>| {
        if !waived(&lines, idx, rule) {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule,
                excerpt: raw_lines.get(idx).unwrap_or(&"").to_string(),
            });
        }
    };
    for (idx, line) in lines.iter().enumerate() {
        if test_mask[idx] || line.code.trim().is_empty() {
            continue;
        }
        let code = &line.code;
        if has_word(code, "unsafe") && !rationale_nearby(&lines, idx, 5, "SAFETY:") {
            report(idx, Rule::SafetyComment, &mut findings);
        }
        if NON_SEQCST.iter().any(|o| code.contains(o))
            && !rationale_nearby(&lines, idx, 8, "ordering:")
        {
            report(idx, Rule::OrderingRationale, &mut findings);
        }
        if class.hot_path && (code.contains("thread::sleep") || has_word(code, "sleep_ms")) {
            report(idx, Rule::HotPathSleep, &mut findings);
        }
        if class.drain_path {
            let panics = PANIC_TOKENS.iter().any(|t| code.contains(t))
                || PANIC_MACROS.iter().any(|m| {
                    code.find(m).is_some_and(|pos| {
                        pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap_or(' '))
                    })
                })
                || has_slice_index(code);
            if panics {
                report(idx, Rule::DrainPathPanic, &mut findings);
            }
        }
        if class.facade
            && (STD_SYNC_TOKENS.iter().any(|t| code.contains(t)) || grouped_std.contains(&idx))
        {
            report(idx, Rule::StdSyncImport, &mut findings);
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Workspace walk.
// ---------------------------------------------------------------------------

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d.to_path_buf());
                }
            }
        }
        dir = d.parent();
    }
    None
}

/// Collects `.rs` files under `dir`, skipping [`SKIP_DIRS`] and
/// dotted directories, in sorted order.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints every non-test `.rs` file under `crates/` and `tools/` of the
/// workspace at `root`. Returns the findings and the file count.
pub fn lint_workspace(root: &Path) -> (Vec<Finding>, usize) {
    let mut files = Vec::new();
    for sub in ["crates", "tools"] {
        collect_rs_files(&root.join(sub), &mut files);
    }
    let mut findings = Vec::new();
    for path in &files {
        let Ok(source) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_source(&rel, &source));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    (findings, files.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_all(source: &str) -> Vec<LineViews> {
        split_views(source)
    }

    #[test]
    fn stripper_separates_code_and_comments() {
        let views = strip_all(
            "let x = 1; // trailing note\n\
             let s = \"panic!(\\\"in a string\\\")\";\n\
             /* block panic!() comment\n\
             still comment */ let y = 2;\n\
             let r = r#\"raw .unwrap() text\"#;\n\
             let c = 'x'; let lt: &'static str = \"\";",
        );
        assert_eq!(views[0].code.trim(), "let x = 1;");
        assert!(views[0].comment.contains("trailing note"));
        assert!(!views[1].code.contains("panic"));
        assert!(views[2].comment.contains("block panic"));
        assert_eq!(views[3].code.trim(), "let y = 2;");
        assert!(!views[4].code.contains("unwrap"));
        // Char literal contents vanish; the lifetime quote survives so
        // type syntax stays recognizable.
        assert!(views[5].code.contains("&'static str"));
        assert!(!views[5].code.contains('x'));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let views = strip_all("/* outer /* inner */ still out */ let z = 3;");
        assert_eq!(views[0].code.trim(), "let z = 3;");
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let bad = "fn f() {\n    unsafe { std::hint::unreachable_unchecked() }\n}";
        let findings = lint_source("crates/x/src/lib.rs", bad);
        assert!(findings.iter().any(|f| f.rule == Rule::SafetyComment));
        let good = "fn f() {\n    // SAFETY: caller guarantees the invariant.\n    unsafe { std::hint::unreachable_unchecked() }\n}";
        assert!(lint_source("crates/x/src/lib.rs", good)
            .iter()
            .all(|f| f.rule != Rule::SafetyComment));
    }

    #[test]
    fn non_seqcst_ordering_needs_rationale() {
        let bad = "counter.fetch_add(1, Ordering::Relaxed);";
        let findings = lint_source("crates/x/src/lib.rs", bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::OrderingRationale);
        let good = "// ordering: monotonic counter, no data published.\ncounter.fetch_add(1, Ordering::Relaxed);";
        assert!(lint_source("crates/x/src/lib.rs", good).is_empty());
        // SeqCst needs no comment.
        assert!(lint_source("crates/x/src/lib.rs", "c.load(Ordering::SeqCst);").is_empty());
    }

    #[test]
    fn sleep_is_flagged_only_on_hot_path_files() {
        let source = "fn f() { thread::sleep(Duration::from_millis(1)); }";
        assert!(lint_source("crates/net/src/client.rs", source)
            .iter()
            .any(|f| f.rule == Rule::HotPathSleep));
        // server.rs is not a declared hot path: its pump may back off.
        assert!(lint_source("crates/net/src/server.rs", source)
            .iter()
            .all(|f| f.rule != Rule::HotPathSleep));
    }

    /// The acceptance criterion's deliberately seeded violation: a
    /// drain-path file with an `unwrap` (and friends) must fail.
    #[test]
    fn seeded_drain_path_violations_fail() {
        for bad in [
            "let x = slot.take().unwrap();",
            "let x = slot.take().expect(\"filled\");",
            "panic!(\"corrupt\");",
            "unreachable!();",
            "let lead = group[0].gate;",
            "let head = buf[..4].to_vec();",
            "let b = chunk?[0];",
        ] {
            let findings = lint_source("crates/serve/src/scheduler.rs", bad);
            assert!(
                findings.iter().any(|f| f.rule == Rule::DrainPathPanic),
                "must flag drain-path panic in: {bad}"
            );
        }
    }

    #[test]
    fn drain_path_rule_spares_non_panicking_idioms() {
        for good in [
            "let x = slot.unwrap_or(0);",
            "let x = slot.unwrap_or_else(Vec::new);",
            "let x = map.get(key);",
            "#[derive(Debug)]",
            "let v = vec![1, 2, 3];",
            "let t: [u8; 4] = [0; 4];",
            "matches!(x, [..])",
            "self.meta.get(gate).copied()",
            "fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {",
            "bytes: &'a [u8],",
            "f(&mut [1, 2]);",
            "return [a, b];",
            "let [byte] = self.array::<1>()?;",
        ] {
            assert!(
                lint_source("crates/serve/src/scheduler.rs", good).is_empty(),
                "must not flag: {good}"
            );
        }
    }

    #[test]
    fn std_sync_imports_are_banned_in_facade_crates() {
        for bad in [
            "use std::sync::Arc;",
            "use std::thread;",
            "let t = std::time::Instant::now();",
        ] {
            let findings = lint_source("crates/serve/src/telemetry.rs", bad);
            assert!(
                findings.iter().any(|f| f.rule == Rule::StdSyncImport),
                "must flag std sync import: {bad}"
            );
        }
        // Non-façade crates may use std::sync directly (core IS the façade).
        assert!(lint_source("crates/core/src/sync/shim.rs", "use std::sync::Arc;").is_empty());
        // std::time::Duration is a plain value type, not a sync primitive.
        assert!(lint_source("crates/net/src/protocol.rs", "use std::time::Duration;").is_empty());
    }

    /// PR 9 widened the façade rule beyond the serving crates: the
    /// model checker, the compiler and the circuits crate must route
    /// sync primitives through `magnon_core::sync` too (or carry a
    /// reasoned waiver, like the checker's own controller lock).
    #[test]
    fn facade_rule_covers_check_compiler_and_circuits() {
        for rel in [
            "crates/check/src/harness.rs",
            "crates/compiler/src/place.rs",
            "crates/circuits/src/netlist.rs",
        ] {
            let findings = lint_source(rel, "use std::sync::Mutex;");
            assert!(
                findings.iter().any(|f| f.rule == Rule::StdSyncImport),
                "must flag std sync import in {rel}"
            );
        }
        let waived = "// lint: allow(std-sync-import) — controller lock must not be modeled\n\
                      use std::sync::Mutex;";
        assert!(lint_source("crates/check/src/harness.rs", waived).is_empty());
    }

    /// Grouped imports must not evade the façade rule: `std::{thread}`
    /// and `std::time::{…, Instant}` never spell the banned path
    /// contiguously, so the expansion pass catches them.
    #[test]
    fn facade_rule_catches_grouped_std_imports() {
        for (src, what) in [
            ("use std::{thread, io};", "std::{thread}"),
            ("use std::time::{Duration, Instant};", "grouped Instant"),
            ("use std::{sync::Arc, fmt};", "nested sync path"),
            ("use std::{io,\n    thread,\n};", "multi-line group"),
            ("use std::time::{Instant as Clock};", "renamed Instant"),
            ("use std::thread::{self};", "self re-import"),
        ] {
            let findings = lint_source("crates/net/src/server.rs", src);
            assert!(
                findings.iter().any(|f| f.rule == Rule::StdSyncImport),
                "must flag {what}: {src}"
            );
        }
        // Groups that never touch a banned path stay clean, as does the
        // same import outside a façade crate.
        assert!(lint_source(
            "crates/net/src/server.rs",
            "use std::time::{Duration};\nuse std::{fmt, io};"
        )
        .is_empty());
        assert!(lint_source("crates/math/src/fft.rs", "use std::{thread, io};").is_empty());
        // Waivers work on the grouped form too.
        let waived = "// lint: allow(std-sync-import) — test fixture needs a raw thread\n\
                      use std::{thread, io};";
        assert!(lint_source("crates/net/src/server.rs", waived).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let source = "fn prod() {}\n\
                      #[cfg(test)]\n\
                      mod tests {\n\
                          use std::sync::Arc;\n\
                          fn t() { x.unwrap(); thread::sleep(d); }\n\
                      }\n";
        assert!(lint_source("crates/serve/src/scheduler.rs", source).is_empty());
        // …but code after the test mod is linted again.
        let tail = format!("{source}fn later() {{ y.unwrap(); }}\n");
        let findings = lint_source("crates/serve/src/scheduler.rs", &tail);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 7);
    }

    #[test]
    fn waivers_silence_a_single_rule_on_a_single_site() {
        let waived = "// Deliberate crash on corrupt state.\n\
                      // lint: allow(drain-path-panic)\n\
                      assert_no_panics();\n\
                      let lead = group[0].gate;\n\
                      let next = group[1].gate;";
        let findings = lint_source("crates/serve/src/scheduler.rs", waived);
        // The waiver covers its own neighborhood (2 lines below), not
        // the indexing further down.
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn waiver_reasons_parse_through_the_shared_helper() {
        let lines = split_views(
            "// analyze: allow(can-alloc) — pooled buffer retains capacity\n\
             buf.push(job);\n\
             // analyze: allow(can-panic)\n\
             x.unwrap();",
        );
        assert_eq!(
            waiver_reason(&lines, 1, "analyze", "can-alloc").as_deref(),
            Some("pooled buffer retains capacity")
        );
        // Present but reasonless — the analyzer makes this an error.
        assert_eq!(
            waiver_reason(&lines, 3, "analyze", "can-panic").as_deref(),
            Some("")
        );
        // Wrong tool tag never matches.
        assert_eq!(waiver_reason(&lines, 1, "lint", "can-alloc"), None);
        // No waiver at all.
        assert_eq!(waiver_reason(&lines, 1, "analyze", "can-panic"), None);
    }

    #[test]
    fn string_and_comment_contents_never_trip_rules() {
        let source = "let s = \"thread::sleep unsafe Ordering::Relaxed .unwrap()\";\n\
                      // mentions panic!(…) and std::sync::Mutex in prose\n";
        assert!(lint_source("crates/serve/src/scheduler.rs", source).is_empty());
    }

    /// The whole point: the real workspace lints clean. This makes
    /// `cargo test` itself a lint gate — a new violation fails here
    /// before CI even runs the binary.
    #[test]
    fn workspace_is_clean() {
        let root = workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("the lint tool lives inside the workspace");
        let (findings, files) = lint_workspace(&root);
        assert!(files > 20, "the walk must actually find the crates");
        let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert!(
            findings.is_empty(),
            "workspace must lint clean, got {} finding(s):\n{}",
            findings.len(),
            rendered.join("\n")
        );
    }
}
