//! `analysis-policy.toml` — a hand-rolled parser for the small TOML
//! subset the policy needs (no external deps in the toolchain):
//! `[[root]]` / `[[trust]]` array-of-tables, an `[ignore]` table,
//! string values, and single- or multi-line string arrays.

use crate::Fact;

/// A root function and the facts it must be transitively free of.
#[derive(Debug, Clone)]
pub struct RootSpec {
    pub func: String,
    pub deny: Vec<Fact>,
    pub reason: String,
}

/// An audited boundary: callers of `func` do not inherit `rules` from
/// it. The trusted function's own facts are still computed — trust
/// cuts propagation, it does not blind the analyzer.
#[derive(Debug, Clone)]
pub struct TrustSpec {
    pub func: String,
    pub rules: Vec<Fact>,
    pub reason: String,
}

/// One named lock class for the lock-order pass. Acquisition sites
/// are matched by the receiver identifier left of `.lock()` (a field,
/// local or static name), optionally scoped to one crate; a
/// guard-returning helper fn can be named instead (or in addition).
#[derive(Debug, Clone, Default)]
pub struct LockSpec {
    pub class: String,
    pub receivers: Vec<String>,
    /// Fully-qualified helpers whose *call* acquires the class for the
    /// rest of the calling function (conservative extent).
    pub acquire_fns: Vec<String>,
    /// Restrict receiver matching to one crate; empty matches any.
    pub crate_scope: String,
    /// Reentrant classes may be re-acquired while held.
    pub reentrant: bool,
    /// Classes that may be acquired while this one is held — the
    /// declared partial order, checked strictly against computed edges.
    pub before: Vec<String>,
    pub reason: String,
}

/// The `[locks]` table.
#[derive(Debug, Default)]
pub struct LockConfig {
    /// Crates where an unclassified `.lock()` receiver is a policy
    /// error rather than a note.
    pub strict: Vec<String>,
    /// `.send()` receivers proven to be unbounded channels (their
    /// sends never block and are exempt from lock-block).
    pub unbounded_sends: Vec<String>,
}

/// The parsed policy.
#[derive(Debug, Default)]
pub struct Policy {
    pub roots: Vec<RootSpec>,
    pub trust: Vec<TrustSpec>,
    pub locks: Vec<LockSpec>,
    pub lock_config: LockConfig,
    /// Method names never resolved against workspace impls (std-common
    /// names like `push`/`get` whose receiver is almost always a std
    /// type; their effects are covered by intrinsic tokens instead).
    pub ignore_methods: Vec<String>,
    /// Files excluded from the graph (e.g. `cfg(mcheck)`-only shims
    /// that do not exist in the production build).
    pub ignore_files: Vec<String>,
}

#[derive(PartialEq)]
enum Section {
    None,
    Root,
    Trust,
    Lock,
    Locks,
    Ignore,
}

/// Strips a `#` comment that is outside quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(v: &str, line_no: usize) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!(
            "policy line {line_no}: expected a quoted string, got `{v}`"
        ))
    }
}

fn parse_array(v: &str, line_no: usize) -> Result<Vec<String>, String> {
    let v = v.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("policy line {line_no}: expected an array, got `{v}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item, line_no)?);
    }
    Ok(out)
}

fn parse_bool(v: &str, line_no: usize) -> Result<bool, String> {
    match v.trim() {
        "true" => Ok(true),
        "false" => Ok(false),
        v => Err(format!(
            "policy line {line_no}: expected true or false, got `{v}`"
        )),
    }
}

fn parse_facts(items: &[String], line_no: usize) -> Result<Vec<Fact>, String> {
    items
        .iter()
        .map(|s| {
            Fact::from_id(s).ok_or_else(|| {
                format!(
                    "policy line {line_no}: unknown rule `{s}` (expected can-panic/can-block/can-alloc)"
                )
            })
        })
        .collect()
}

/// Parses the policy text. Every root and trust entry must name a
/// function, at least one rule, and a non-empty reason.
pub fn parse_policy(text: &str) -> Result<Policy, String> {
    let mut policy = Policy::default();
    let mut section = Section::None;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let mut line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        match line.as_str() {
            "[[root]]" => {
                section = Section::Root;
                policy.roots.push(RootSpec {
                    func: String::new(),
                    deny: Vec::new(),
                    reason: String::new(),
                });
                continue;
            }
            "[[trust]]" => {
                section = Section::Trust;
                policy.trust.push(TrustSpec {
                    func: String::new(),
                    rules: Vec::new(),
                    reason: String::new(),
                });
                continue;
            }
            "[[lock]]" => {
                section = Section::Lock;
                policy.locks.push(LockSpec::default());
                continue;
            }
            "[locks]" => {
                section = Section::Locks;
                continue;
            }
            "[ignore]" => {
                section = Section::Ignore;
                continue;
            }
            s if s.starts_with('[') => {
                return Err(format!("policy line {line_no}: unknown section `{s}`"));
            }
            _ => {}
        }
        let Some((key, mut value)) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        else {
            return Err(format!(
                "policy line {line_no}: expected `key = value`, got `{line}`"
            ));
        };
        // Multi-line arrays: accumulate until the closing bracket.
        if value.starts_with('[') && !value.ends_with(']') {
            for (_, more) in lines.by_ref() {
                let more = strip_comment(more).trim();
                value.push(' ');
                value.push_str(more);
                if more.ends_with(']') {
                    break;
                }
            }
        }
        line = String::new();
        let _ = line;
        match (&section, key.as_str()) {
            (Section::Root, "fn") => {
                if let Some(r) = policy.roots.last_mut() {
                    r.func = parse_string(&value, line_no)?;
                }
            }
            (Section::Root, "deny") => {
                if let Some(r) = policy.roots.last_mut() {
                    r.deny = parse_facts(&parse_array(&value, line_no)?, line_no)?;
                }
            }
            (Section::Root, "reason") => {
                if let Some(r) = policy.roots.last_mut() {
                    r.reason = parse_string(&value, line_no)?;
                }
            }
            (Section::Trust, "fn") => {
                if let Some(t) = policy.trust.last_mut() {
                    t.func = parse_string(&value, line_no)?;
                }
            }
            (Section::Trust, "rules") => {
                if let Some(t) = policy.trust.last_mut() {
                    t.rules = parse_facts(&parse_array(&value, line_no)?, line_no)?;
                }
            }
            (Section::Trust, "reason") => {
                if let Some(t) = policy.trust.last_mut() {
                    t.reason = parse_string(&value, line_no)?;
                }
            }
            (Section::Lock, key) => {
                let Some(l) = policy.locks.last_mut() else {
                    continue;
                };
                match key {
                    "class" => l.class = parse_string(&value, line_no)?,
                    "receivers" => l.receivers = parse_array(&value, line_no)?,
                    "acquire_fns" => l.acquire_fns = parse_array(&value, line_no)?,
                    "crate" => l.crate_scope = parse_string(&value, line_no)?,
                    "reentrant" => l.reentrant = parse_bool(&value, line_no)?,
                    "before" => l.before = parse_array(&value, line_no)?,
                    "reason" => l.reason = parse_string(&value, line_no)?,
                    _ => {
                        return Err(format!(
                            "policy line {line_no}: key `{key}` not valid in [[lock]]"
                        ));
                    }
                }
            }
            (Section::Locks, "strict") => {
                policy.lock_config.strict = parse_array(&value, line_no)?;
            }
            (Section::Locks, "unbounded_sends") => {
                policy.lock_config.unbounded_sends = parse_array(&value, line_no)?;
            }
            (Section::Ignore, "methods") => {
                policy.ignore_methods = parse_array(&value, line_no)?;
            }
            (Section::Ignore, "files") => {
                policy.ignore_files = parse_array(&value, line_no)?;
            }
            _ => {
                return Err(format!("policy line {line_no}: key `{key}` not valid here"));
            }
        }
    }
    for r in &policy.roots {
        if r.func.is_empty() || r.deny.is_empty() {
            return Err(format!(
                "policy root `{}` needs `fn` and a non-empty `deny`",
                r.func
            ));
        }
        if r.reason.is_empty() {
            return Err(format!("policy root `{}` must name a reason", r.func));
        }
    }
    for t in &policy.trust {
        if t.func.is_empty() || t.rules.is_empty() {
            return Err(format!(
                "policy trust `{}` needs `fn` and non-empty `rules`",
                t.func
            ));
        }
        if t.reason.is_empty() {
            return Err(format!("policy trust `{}` must name a reason", t.func));
        }
    }
    for (i, l) in policy.locks.iter().enumerate() {
        if l.class.is_empty() {
            return Err("every [[lock]] entry must name a class".into());
        }
        if l.receivers.is_empty() && l.acquire_fns.is_empty() {
            return Err(format!(
                "policy lock class `{}` needs `receivers` or `acquire_fns`",
                l.class
            ));
        }
        if l.reason.is_empty() {
            return Err(format!(
                "policy lock class `{}` must name a reason",
                l.class
            ));
        }
        if policy.locks[..i].iter().any(|p| p.class == l.class) {
            return Err(format!("policy lock class `{}` is declared twice", l.class));
        }
        for b in &l.before {
            if !policy.locks.iter().any(|p| &p.class == b) {
                return Err(format!(
                    "policy lock class `{}` is ordered before unknown class `{}`",
                    l.class, b
                ));
            }
        }
    }
    if let Some(cycle) = declared_order_cycle(&policy.locks) {
        return Err(format!(
            "policy declared lock order is cyclic: {cycle} — a cyclic `before` relation can prove nothing"
        ));
    }
    Ok(policy)
}

/// DFS over the declared `before` edges; returns a rendered cycle when
/// the declared order is not a partial order.
fn declared_order_cycle(locks: &[LockSpec]) -> Option<String> {
    fn dfs(i: usize, locks: &[LockSpec], state: &mut [u8], path: &mut Vec<usize>) -> Option<usize> {
        state[i] = 1;
        path.push(i);
        for b in &locks[i].before {
            let Some(j) = locks.iter().position(|l| &l.class == b) else {
                continue;
            };
            match state[j] {
                1 => return Some(j),
                0 => {
                    if let Some(c) = dfs(j, locks, state, path) {
                        return Some(c);
                    }
                }
                _ => {}
            }
        }
        state[i] = 2;
        path.pop();
        None
    }
    let mut state = vec![0u8; locks.len()];
    for i in 0..locks.len() {
        if state[i] == 0 {
            let mut path = Vec::new();
            if let Some(entry) = dfs(i, locks, &mut state, &mut path) {
                let pos = path.iter().position(|&p| p == entry).unwrap_or(0);
                let mut names: Vec<&str> = path[pos..]
                    .iter()
                    .map(|&p| locks[p].class.as_str())
                    .collect();
                names.push(locks[entry].class.as_str());
                return Some(names.join(" → "));
            }
        }
    }
    None
}
