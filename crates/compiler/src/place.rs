//! Placement: bin-packing gate nodes onto `(waveguide, lane)` slots.
//!
//! The placer answers two questions:
//!
//! * **how much spectrum can one waveguide carry?** Lanes of the
//!   [`fdm_lane_base`] grid stack onto a waveguide while their built
//!   [`ChannelPlan`]s stay pairwise disjoint
//!   ([`ChannelPlan::overlaps`]), keep the grid's guard band
//!   ([`ChannelPlan::guard_band_to`]), and the whole stack's
//!   [`LaneIsolationReport`] stays clean — the moment isolation drops
//!   below the configured floor, the next slot opens a new waveguide;
//! * **which slot runs which gate?** Within each ASAP wavefront, every
//!   gate node goes to the slot with the least load *in that level*,
//!   ties broken by the slot's crosstalk penalty (worst Lorentzian
//!   leakage against its co-resident lanes) and then by index. Gates
//!   of one wavefront therefore spread across lanes and waveguides —
//!   whole-waveguide drains stack them into multi-lane FDM passes by
//!   construction.

use crate::levelize::Levelized;
use crate::{CompileError, CompilerConfig};
use magnon_circuits::netlist::{
    fdm_lane_base, fdm_lane_guard_band, packed_frequency_step, Circuit, NodeId,
};
use magnon_core::channel::{ChannelPlan, DispersionModel};
use magnon_core::crosstalk::LaneIsolationReport;
use magnon_core::gate::{LaneId, WaveguideId};
use magnon_physics::waveguide::Waveguide;

/// One `(waveguide, lane)` execution slot of a compiled plan. A slot
/// hosts the two gate shapes circuits lower to (MAJ-3, XOR-2) on its
/// lane's slice of the spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotSpec {
    /// The physical waveguide the slot lives on (plan-relative id; an
    /// executor may rebase it when sharing a scheduler between plans).
    pub waveguide: WaveguideId,
    /// The frequency lane within that waveguide.
    pub lane: LaneId,
    /// First channel frequency of the lane's band (Hz).
    pub base_frequency: f64,
    /// Channel spacing within the band (Hz).
    pub frequency_step: f64,
}

/// The slot table and gate-to-slot assignment of a compiled circuit.
#[derive(Debug, Clone)]
pub struct Placement {
    slots: Vec<SlotSpec>,
    /// Node index → slot index, gate nodes only.
    assignment: Vec<Option<usize>>,
    lanes_per_waveguide: u16,
    waveguides_used: usize,
    min_guard_band: f64,
    isolation_db: f64,
}

impl Placement {
    /// The slot table, densest-packed waveguide first.
    pub fn slots(&self) -> &[SlotSpec] {
        &self.slots
    }

    /// The slot gate node `id` executes on (`None` for free nodes and
    /// foreign handles).
    pub fn slot_of(&self, id: NodeId) -> Option<usize> {
        self.assignment.get(id.index()).copied().flatten()
    }

    /// Lanes stacked per waveguide before isolation (or the lane cap)
    /// stopped the packer.
    pub fn lanes_per_waveguide(&self) -> u16 {
        self.lanes_per_waveguide
    }

    /// Distinct waveguides the plan claims.
    pub fn waveguides_used(&self) -> usize {
        self.waveguides_used
    }

    /// Smallest spectral gap (Hz) between two lanes sharing a
    /// waveguide; infinite when no waveguide carries two lanes.
    pub fn min_guard_band(&self) -> f64 {
        self.min_guard_band
    }

    /// Worst inter-lane isolation (dB) across the plan's waveguides;
    /// infinite when no waveguide carries two lanes.
    pub fn isolation_db(&self) -> f64 {
        self.isolation_db
    }
}

/// Runs the placement pass.
///
/// # Errors
///
/// * [`CompileError::Placement`] when not even lane 0 builds on the
///   target waveguide.
/// * [`CompileError::Gate`] for channel-plan construction failures.
pub fn place(
    circuit: &Circuit,
    levelized: &Levelized,
    waveguide: &Waveguide,
    config: &CompilerConfig,
) -> Result<Placement, CompileError> {
    let width = circuit.width();
    let step = packed_frequency_step(width);
    let guard = fdm_lane_guard_band(width);

    if levelized.max_level_width() == 0 {
        // No gates: nothing to place, nothing to claim.
        return Ok(Placement {
            slots: Vec::new(),
            assignment: vec![None; circuit.node_count()],
            lanes_per_waveguide: 0,
            waveguides_used: 0,
            min_guard_band: f64::INFINITY,
            isolation_db: f64::INFINITY,
        });
    }

    // 1. Stack lanes onto one waveguide while the spectrum stays clean:
    //    disjoint bands, the grid's guard band, and isolation above the
    //    configured floor. This is the compile-time verification the
    //    scheduler's own build-time overlap check later re-asserts.
    let mut lane_plans: Vec<ChannelPlan> = Vec::new();
    for lane in 0..config.max_lanes_per_waveguide {
        let Ok(plan) = ChannelPlan::uniform(
            waveguide,
            DispersionModel::Exchange,
            width,
            fdm_lane_base(lane, width),
            step,
        ) else {
            break;
        };
        let disjoint = lane_plans
            .iter()
            .all(|p| !p.overlaps(&plan) && p.guard_band_to(&plan) >= guard - 1.0);
        if !disjoint {
            break;
        }
        if !lane_plans.is_empty() {
            let mut refs: Vec<&ChannelPlan> = lane_plans.iter().collect();
            refs.push(&plan);
            let clean = LaneIsolationReport::analyze(&refs, config.linewidth)
                .map(|r| r.is_clean(config.min_isolation_db))
                .unwrap_or(false);
            if !clean {
                break;
            }
        }
        lane_plans.push(plan);
    }
    if lane_plans.is_empty() {
        return Err(CompileError::Placement {
            reason: format!("lane 0 of the w{width} grid does not build on this waveguide"),
        });
    }
    let lanes_per_waveguide = lane_plans.len() as u16;

    // 2. Size the slot table to the concurrency demand, capped by the
    //    spectrum budget. Slots fill waveguide 0's lanes first, then
    //    open waveguide 1, and so on — FDM density before hardware.
    let want = levelized.max_level_width();
    let capacity = config.max_waveguides.max(1) * lanes_per_waveguide as usize;
    let slot_count = want.min(capacity);
    let slots: Vec<SlotSpec> = (0..slot_count)
        .map(|k| {
            let lane = (k % lanes_per_waveguide as usize) as u16;
            SlotSpec {
                waveguide: WaveguideId((k / lanes_per_waveguide as usize) as u64),
                lane: LaneId(lane),
                base_frequency: fdm_lane_base(lane, width),
                frequency_step: step,
            }
        })
        .collect();

    // 3. Per-slot crosstalk penalty: the worst Lorentzian leakage the
    //    slot's lane picks up from co-resident lanes on its waveguide —
    //    the cost-function term that prefers spectrally lonely slots
    //    when level loads tie.
    let penalty: Vec<f64> = slots
        .iter()
        .map(|s| {
            slots
                .iter()
                .filter(|o| o.waveguide == s.waveguide && o.lane != s.lane)
                .map(|o| {
                    let gap =
                        lane_plans[s.lane.0 as usize].guard_band_to(&lane_plans[o.lane.0 as usize]);
                    1.0 / (1.0 + (gap / config.linewidth).powi(2))
                })
                .fold(0.0, f64::max)
        })
        .collect();

    // 4. Assign each wavefront's gates: least level-load first, then
    //    least crosstalk, then lowest index (deterministic).
    let mut assignment = vec![None; circuit.node_count()];
    for level in levelized.levels() {
        let mut level_load = vec![0usize; slot_count];
        for node in level {
            let best = (0..slot_count)
                .min_by(|&a, &b| {
                    level_load[a]
                        .cmp(&level_load[b])
                        .then(
                            penalty[a]
                                .partial_cmp(&penalty[b])
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                        .then(a.cmp(&b))
                })
                .expect("slot_count >= 1 when gates exist");
            assignment[node.index()] = Some(best);
            level_load[best] += 1;
        }
    }

    // 5. Aggregate spectrum facts over the lanes actually used.
    let waveguides_used = slots
        .last()
        .map(|s| s.waveguide.0 as usize + 1)
        .unwrap_or(0);
    let used_lanes = lanes_per_waveguide.min(slot_count as u16) as usize;
    let (min_guard_band, isolation_db) = if used_lanes >= 2 {
        let refs: Vec<&ChannelPlan> = lane_plans[..used_lanes].iter().collect();
        let report = LaneIsolationReport::analyze(&refs, config.linewidth)?;
        (report.min_guard_band, report.isolation_db)
    } else {
        (f64::INFINITY, f64::INFINITY)
    };

    Ok(Placement {
        slots,
        assignment,
        lanes_per_waveguide,
        waveguides_used,
        min_guard_band,
        isolation_db,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levelize::levelize;

    /// `gates` independent XOR gates — one maximally wide wavefront.
    fn wide_circuit(gates: usize) -> Circuit {
        let mut c = Circuit::new(8).unwrap();
        for _ in 0..gates {
            let a = c.input();
            let b = c.input();
            let x = c.xor2(a, b).unwrap();
            c.mark_output(x).unwrap();
        }
        c
    }

    #[test]
    fn packs_denser_than_one_gate_per_waveguide() {
        let guide = Waveguide::paper_default().unwrap();
        let config = CompilerConfig::default();
        let circuit = wide_circuit(6);
        let lv = levelize(&circuit);
        let placement = place(&circuit, &lv, &guide, &config).unwrap();
        assert_eq!(placement.slots().len(), 6);
        // Naive placement claims one waveguide per gate (6); stacking
        // FDM lanes must beat that.
        assert!(
            placement.waveguides_used() < 6,
            "expected FDM stacking, got {} waveguides",
            placement.waveguides_used()
        );
        assert!(placement.lanes_per_waveguide() >= 2);
        // The spectrum facts the stacking relied on.
        assert!(placement.min_guard_band() >= fdm_lane_guard_band(8) - 1.0);
        assert!(placement.isolation_db() >= config.min_isolation_db);
    }

    #[test]
    fn level_load_spreads_across_slots() {
        let guide = Waveguide::paper_default().unwrap();
        let circuit = wide_circuit(4);
        let lv = levelize(&circuit);
        let placement = place(&circuit, &lv, &guide, &CompilerConfig::default()).unwrap();
        // 4 concurrent gates over >= 2 slots: no slot hosts everything.
        let mut per_slot = vec![0usize; placement.slots().len()];
        for id in circuit.node_ids() {
            if let Some(slot) = placement.slot_of(id) {
                per_slot[slot] += 1;
            }
        }
        assert!(per_slot.iter().all(|&n| n == 1), "{per_slot:?}");
    }

    #[test]
    fn lane_cap_limits_stacking() {
        let guide = Waveguide::paper_default().unwrap();
        let config = CompilerConfig {
            max_lanes_per_waveguide: 1,
            ..CompilerConfig::default()
        };
        let circuit = wide_circuit(3);
        let lv = levelize(&circuit);
        let placement = place(&circuit, &lv, &guide, &config).unwrap();
        assert_eq!(placement.lanes_per_waveguide(), 1);
        assert_eq!(placement.waveguides_used(), 3);
        assert_eq!(placement.min_guard_band(), f64::INFINITY);
    }

    #[test]
    fn capacity_caps_the_slot_table() {
        let guide = Waveguide::paper_default().unwrap();
        let config = CompilerConfig {
            max_waveguides: 1,
            max_lanes_per_waveguide: 2,
            ..CompilerConfig::default()
        };
        let circuit = wide_circuit(5);
        let lv = levelize(&circuit);
        let placement = place(&circuit, &lv, &guide, &config).unwrap();
        // Demand (5) exceeds capacity (2): gates share slots.
        assert_eq!(placement.slots().len(), 2);
        assert_eq!(placement.waveguides_used(), 1);
    }
}
