//! Pluggable evaluation backends and the batched session API.
//!
//! The paper's core claim is data parallelism: one waveguide evaluates
//! `n` logic results per pass. This module extends that parallelism
//! across *operand sets* and across *evaluation engines*:
//!
//! * [`SpinWaveBackend`] — the evaluation contract. A backend is bound
//!   to one [`ParallelGate`] and turns operand words into a
//!   [`GateOutput`], one set at a time or in batches.
//! * [`AnalyticBackend`] — the wave-superposition engine
//!   ([`crate::engine`]), with rayon data-parallelism across the sets
//!   of a batch.
//! * [`CachedBackend`] — a precompiled truth-table backend: per-channel
//!   decode results are memoized keyed on the channel's input bits, so
//!   hot-path serving of repeated combinations is a table lookup.
//! * [`MicromagBackend`] — adapts
//!   [`crate::micromag_bridge::MicromagValidator`] so full LLG
//!   validation runs through the *same* interface (the calibration run
//!   is cached across the whole session).
//! * [`GateSession`] — owns one backend and precomputes everything an
//!   evaluation needs exactly once; [`GateSession::evaluate_batch`]
//!   then streams any number of [`OperandSet`]s through it.
//!
//! Pick a backend with [`BackendChoice`]; switching a whole circuit
//! from analytic to cached to micromagnetic evaluation is a one-line
//! change (see `magnon_circuits::netlist`).

use crate::bitslice::{lane_mask, transpose64};
use crate::engine::ChannelReadout;
use crate::error::GateError;
use crate::gate::{GateOutput, ParallelGate};
use crate::lut_store::LutSnapshot;
use crate::micromag_bridge::{MicromagValidator, ValidationSettings};
use crate::word::Word;
use rayon::prelude::*;

/// Caller-chosen tag carried through batched evaluation so completions
/// can be matched out of order (see
/// [`GateSession::evaluate_batch_tagged`]).
pub type RequestTag = u64;

/// One gate invocation's operand words (`m` words of width `n`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandSet {
    words: Vec<Word>,
}

impl OperandSet {
    /// Wraps `words` as one operand set.
    pub fn new(words: Vec<Word>) -> Self {
        OperandSet { words }
    }

    /// The operand words.
    pub fn words(&self) -> &[Word] {
        &self.words
    }

    /// Unwraps into the operand words.
    pub fn into_words(self) -> Vec<Word> {
        self.words
    }
}

impl From<Vec<Word>> for OperandSet {
    fn from(words: Vec<Word>) -> Self {
        OperandSet::new(words)
    }
}

impl From<&[Word]> for OperandSet {
    fn from(words: &[Word]) -> Self {
        OperandSet::new(words.to_vec())
    }
}

/// Cache-effectiveness counters of a LUT-keeping backend (see
/// [`SpinWaveBackend::lut_stats`]).
///
/// Counters are per backend instance: [`SpinWaveBackend::split`] hands
/// the shard a warm LUT (including its dense rows) but zeroed
/// `hits`/`misses`, so a sum over live shard sessions never
/// double-counts warm-up work already reported by the template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LutStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Entries computed (and memoized) on demand.
    pub misses: u64,
    /// Channel rows flattened to the dense bit-sliced form.
    pub dense_rows: usize,
    /// Total channel rows (the gate's word width).
    pub total_rows: usize,
}

/// The evaluation contract every engine implements.
///
/// A backend is constructed around one gate; `evaluate` answers a
/// single operand set, `evaluate_batch` any number of them. The default
/// batch implementation maps `evaluate` — backends override it when
/// they can do better (the analytic backend parallelises across sets,
/// the cached backend serves from its LUT).
///
/// Backends are `Send + Sync` so serving runtimes can move them onto
/// worker shards; [`SpinWaveBackend::split`] mints the per-shard
/// instances (see `magnon-serve`).
pub trait SpinWaveBackend: Send + Sync {
    /// Stable identifier for reports and logs.
    fn name(&self) -> &'static str;

    /// The gate this backend evaluates.
    fn gate(&self) -> &ParallelGate;

    /// Creates an independent instance of this backend for another
    /// worker shard. State worth carrying over travels with the split —
    /// a cached backend hands each shard a copy of its warm LUT, the
    /// micromagnetic backend its calibration run.
    ///
    /// # Errors
    ///
    /// Propagates backend construction failures.
    fn split(&self) -> Result<Box<dyn SpinWaveBackend>, GateError>;

    /// The backend's current truth-table LUT, when it maintains one
    /// (`None` for engines that compute every request).
    fn lut_snapshot(&self) -> Option<LutSnapshot> {
        None
    }

    /// Adopts previously exported LUT entries, returning how many were
    /// imported. Backends without a LUT accept and ignore the snapshot
    /// (returning `0`), so persistence wiring stays backend-agnostic.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::Persistence`] when the snapshot was
    /// computed for a different gate.
    fn import_lut(&mut self, snapshot: &LutSnapshot) -> Result<usize, GateError> {
        let _ = snapshot;
        Ok(0)
    }

    /// Evaluates one operand set.
    ///
    /// # Errors
    ///
    /// * [`GateError::InputCountMismatch`] /
    ///   [`GateError::WordWidthMismatch`] for malformed operands.
    /// * Backend-specific failures (e.g. simulation errors).
    fn evaluate(&mut self, inputs: &[Word]) -> Result<GateOutput, GateError>;

    /// Evaluates many operand sets, preserving order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SpinWaveBackend::evaluate`]; the first
    /// failing set aborts the batch.
    fn evaluate_batch(&mut self, sets: &[OperandSet]) -> Result<Vec<GateOutput>, GateError> {
        sets.iter().map(|set| self.evaluate(set.words())).collect()
    }

    /// Evaluates many operand sets, returning only the decoded logic
    /// words — no per-channel readout diagnostics. Responses on the
    /// wire carry only logic words, so serving drains use this path to
    /// skip the dominant per-request allocation. The default maps
    /// [`SpinWaveBackend::evaluate_batch`] and discards the readouts;
    /// backends with a faster logic-only path override it (the cached
    /// backend answers straight from its bit-sliced kernel).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SpinWaveBackend::evaluate_batch`].
    fn evaluate_batch_logic(&mut self, sets: &[OperandSet]) -> Result<Vec<Word>, GateError> {
        Ok(self
            .evaluate_batch(sets)?
            .into_iter()
            .map(|output| output.word())
            .collect())
    }

    /// Eagerly resolves everything this backend can precompute, so
    /// serving never computes on the hot path — the cached backend
    /// fills its whole LUT and flattens every row to the dense
    /// bit-sliced form. A no-op for backends with nothing to warm.
    fn warm_all(&mut self) {}

    /// Truth-table cache effectiveness counters, when the backend keeps
    /// a LUT (`None` for engines that compute every request).
    fn lut_stats(&self) -> Option<LutStats> {
        None
    }
}

/// Selects and constructs a backend; [`Default`] is the analytic
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BackendChoice {
    /// Complex wave superposition (exact analytic model).
    #[default]
    Analytic,
    /// Precompiled/memoized truth-table lookups on top of the analytic
    /// engine.
    Cached,
    /// Full LLG micromagnetic simulation with the given settings.
    Micromag(ValidationSettings),
}

impl BackendChoice {
    /// Instantiates the chosen backend around `gate`.
    ///
    /// # Errors
    ///
    /// Propagates backend construction failures
    /// ([`CachedBackend::new`]'s input-count cap).
    pub fn instantiate(self, gate: ParallelGate) -> Result<Box<dyn SpinWaveBackend>, GateError> {
        Ok(match self {
            BackendChoice::Analytic => Box::new(AnalyticBackend::new(gate)),
            BackendChoice::Cached => Box::new(CachedBackend::new(gate)?),
            BackendChoice::Micromag(settings) => {
                Box::new(MicromagBackend::with_settings(gate, settings))
            }
        })
    }
}

/// The analytic wave-superposition engine as a backend.
///
/// All geometry, damping and drive amplitudes were folded into the
/// gate's compiled prep at build time; a batch fans operand sets out
/// across rayon workers.
#[derive(Debug, Clone)]
pub struct AnalyticBackend {
    gate: ParallelGate,
}

impl AnalyticBackend {
    /// Wraps `gate` in the analytic engine.
    pub fn new(gate: ParallelGate) -> Self {
        AnalyticBackend { gate }
    }
}

impl SpinWaveBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn gate(&self) -> &ParallelGate {
        &self.gate
    }

    fn split(&self) -> Result<Box<dyn SpinWaveBackend>, GateError> {
        Ok(Box::new(self.clone()))
    }

    fn evaluate(&mut self, inputs: &[Word]) -> Result<GateOutput, GateError> {
        self.gate.evaluate(inputs)
    }

    fn evaluate_batch(&mut self, sets: &[OperandSet]) -> Result<Vec<GateOutput>, GateError> {
        // Validate the whole batch up front so workers run the pure
        // hot path.
        for set in sets {
            self.gate.check_inputs(set.words())?;
        }
        let prep = self.gate.prep();
        let workers = std::thread::available_parallelism().map_or(1, usize::from);
        if workers > 1 && sets.len() > 1 {
            return sets
                .par_iter()
                .map(|set| {
                    let (word, readouts) = prep.evaluate_set(set.words())?;
                    Ok(GateOutput::new(word, readouts))
                })
                .collect();
        }
        // Single worker: a direct loop skips the fan-out/collect
        // machinery, which benches ~25% slower than this loop on a
        // 1-core host (see benches/batch_throughput.rs).
        let mut outputs = Vec::with_capacity(sets.len());
        for set in sets {
            let (word, readouts) = prep.evaluate_set(set.words())?;
            outputs.push(GateOutput::new(word, readouts));
        }
        Ok(outputs)
    }

    fn evaluate_batch_logic(&mut self, sets: &[OperandSet]) -> Result<Vec<Word>, GateError> {
        for set in sets {
            self.gate.check_inputs(set.words())?;
        }
        let prep = self.gate.prep();
        let workers = std::thread::available_parallelism().map_or(1, usize::from);
        if workers > 1 && sets.len() > 1 {
            return sets
                .par_iter()
                .map(|set| prep.evaluate_word(set.words()))
                .collect();
        }
        sets.iter()
            .map(|set| prep.evaluate_word(set.words()))
            .collect()
    }
}

/// Upper bound on the operand count a LUT backend will precompile
/// (`2^m` entries per channel).
const MAX_LUT_INPUTS: usize = 16;

/// Operand-count cutoff for the sum-of-products strategy in the sliced
/// kernel: up to `2^m` minterm word-ops per channel beat 64 per-lane
/// gathers while `m` stays small; past this the indexed gather loop
/// (which the compiler can unroll and vectorize) wins.
const SOP_MAX_INPUTS: usize = 6;

/// A fully resolved channel row flattened for the bit-sliced hot path:
/// no `Option` anywhere the kernel reads.
#[derive(Debug, Clone)]
struct DenseRow {
    /// Packed decoded logic — bit `combo % 64` of word `combo / 64`.
    logic: Vec<u64>,
    /// Combos decoding to 1 (picks the sparser sum-of-products
    /// polarity).
    ones: usize,
    /// `readouts[combo]` — the analog side table full outputs gather
    /// from.
    readouts: Vec<ChannelReadout>,
}

/// The input combination channel `channel` carries for validated
/// operands: bit `j` = input `j`'s bit on that channel.
#[inline]
fn combo_of(inputs: &[Word], channel: usize) -> usize {
    let mut combo = 0usize;
    for (j, word) in inputs.iter().enumerate() {
        combo |= (((word.bits() >> channel) & 1) as usize) << j;
    }
    combo
}

/// All-lanes LUT lookup for one dense channel by sum-of-products: OR
/// together, for every combo whose LUT bit is set, the AND across
/// inputs of that combo's (possibly complemented) operand bit-plane —
/// one boolean word-op chain answers all 64 lanes. The sparser polarity
/// is iterated: when more than half the combos decode to 1, the zeros
/// are summed and the result complemented.
fn sop_lookup(dense: &DenseRow, planes: &[[u64; 64]], channel: usize, mask: u64) -> u64 {
    let combos = dense.readouts.len();
    let invert = 2 * dense.ones > combos;
    let mut acc = 0u64;
    for combo in 0..combos {
        // analyze: allow(can-panic) — in-bounds: logic packs one bit per combo
        let lut_bit = (dense.logic[combo >> 6] >> (combo & 63)) & 1 == 1;
        if lut_bit == invert {
            continue;
        }
        let mut term = mask;
        for (j, plane) in planes.iter().enumerate() {
            // analyze: allow(can-panic) — in-bounds: channel < word width ≤ 64
            let p = plane[channel];
            term &= if (combo >> j) & 1 == 1 { p } else { !p };
            if term == 0 {
                break;
            }
        }
        acc |= term;
    }
    if invert {
        !acc & mask
    } else {
        acc
    }
}

/// All-lanes LUT lookup for one dense channel by per-lane gather —
/// branch-free indexed reads of the packed bitset.
fn gather_lookup(dense: &DenseRow, planes: &[[u64; 64]], channel: usize, lanes: usize) -> u64 {
    let mut out = 0u64;
    for s in 0..lanes {
        let mut combo = 0usize;
        for (j, plane) in planes.iter().enumerate() {
            // analyze: allow(can-panic) — in-bounds: channel < word width ≤ 64
            combo |= (((plane[channel] >> s) & 1) as usize) << j;
        }
        // analyze: allow(can-panic) — in-bounds: logic packs one bit per combo
        out |= ((dense.logic[combo >> 6] >> (combo & 63)) & 1) << s;
    }
    out
}

/// A precompiled truth-table backend.
///
/// Each channel's decode depends only on the `m` input bits it carries,
/// so there are just `2^m` distinct readouts per channel. They are
/// memoized on first use — or all at once via
/// [`CachedBackend::precompile`] — after which evaluation is a pure
/// table lookup per channel.
///
/// The moment a channel's row is fully resolved it is *densified*:
/// flattened into a packed logic bitset plus a readout side table (see
/// `DenseRow`), and batches to dense channels run the bit-sliced kernel
/// — operand bits of up to 64 sets pack into `u64` lanes and every
/// boolean op answers all lanes at once (see [`crate::bitslice`]).
#[derive(Debug, Clone)]
pub struct CachedBackend {
    gate: ParallelGate,
    /// `lut[channel][combo]` — memoized readout for that input
    /// combination.
    lut: Vec<Vec<Option<ChannelReadout>>>,
    /// Resolved-entry count per channel row (densify trigger).
    filled: Vec<usize>,
    /// Dense form per channel, present once the row is fully resolved.
    dense: Vec<Option<DenseRow>>,
    hits: u64,
    misses: u64,
}

impl CachedBackend {
    /// Wraps `gate` in a LUT backend.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::UnsupportedFunction`] when the gate has more
    /// than 16 inputs (the LUT would need `2^m` entries per channel).
    pub fn new(gate: ParallelGate) -> Result<Self, GateError> {
        if gate.input_count() > MAX_LUT_INPUTS {
            return Err(GateError::UnsupportedFunction {
                reason: "cached backend supports at most 16 inputs (2^m LUT entries per channel)",
            });
        }
        // Rows are allocated lazily on first touch: construction stays
        // O(n) even at the 2^16-combination cap.
        let n = gate.word_width();
        Ok(CachedBackend {
            gate,
            lut: vec![Vec::new(); n],
            filled: vec![0; n],
            dense: vec![None; n],
            hits: 0,
            misses: 0,
        })
    }

    /// Fills the whole LUT eagerly (`n · 2^m` channel evaluations) and
    /// densifies every row, so serving never computes again and every
    /// batch runs the bit-sliced kernel.
    pub fn precompile(&mut self) {
        let combos = 1usize << self.gate.input_count();
        for c in 0..self.gate.word_width() {
            if self.dense[c].is_some() {
                continue;
            }
            let row = &mut self.lut[c];
            if row.is_empty() {
                row.resize(combos, None);
            }
            let mut filled = self.filled[c];
            for (combo, entry) in row.iter_mut().enumerate() {
                if entry.is_none() {
                    *entry = Some(self.gate.prep().channel_readout(c, combo));
                    self.misses += 1;
                    filled += 1;
                }
            }
            self.filled[c] = filled;
            self.densify(c);
        }
    }

    /// LUT lookups answered from memory so far.
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// LUT entries computed so far.
    pub fn cache_misses(&self) -> u64 {
        self.misses
    }

    /// Channel rows currently in the dense bit-sliced form.
    pub fn dense_rows(&self) -> usize {
        self.dense.iter().filter(|d| d.is_some()).count()
    }

    /// Flattens a fully resolved row into its dense form: the packed
    /// logic bitset the sliced kernel reads, the analog side table full
    /// outputs gather from, and the one-bit population count that picks
    /// the sum-of-products polarity.
    fn densify(&mut self, channel: usize) {
        debug_assert!(self.dense[channel].is_none());
        let row = &self.lut[channel];
        let combos = row.len();
        let mut logic = vec![0u64; combos.div_ceil(64)];
        let mut readouts = Vec::with_capacity(combos);
        let mut ones = 0usize;
        for (combo, entry) in row.iter().enumerate() {
            let readout = entry.expect("densify requires a fully resolved row");
            if readout.logic {
                logic[combo >> 6] |= 1u64 << (combo & 63);
                ones += 1;
            }
            readouts.push(readout);
        }
        self.dense[channel] = Some(DenseRow {
            logic,
            ones,
            readouts,
        });
    }

    fn channel_readout(&mut self, channel: usize, combo: usize) -> ChannelReadout {
        if let Some(dense) = &self.dense[channel] {
            let readout = dense.readouts[combo];
            self.hits += 1;
            return readout;
        }
        let combos = 1usize << self.gate.prep().input_count();
        if self.lut[channel].is_empty() {
            self.lut[channel].resize(combos, None);
        }
        if let Some(readout) = self.lut[channel][combo] {
            self.hits += 1;
            return readout;
        }
        let readout = self.gate.prep().channel_readout(channel, combo);
        self.lut[channel][combo] = Some(readout);
        self.misses += 1;
        self.filled[channel] += 1;
        if self.filled[channel] == combos {
            self.densify(channel);
        }
        readout
    }

    fn evaluate_prepared(&mut self, inputs: &[Word]) -> Result<GateOutput, GateError> {
        let n = self.gate.word_width();
        let mut bits = 0u64;
        let mut readouts = Vec::with_capacity(n);
        for c in 0..n {
            let readout = self.channel_readout(c, combo_of(inputs, c));
            bits |= (readout.logic as u64) << c;
            readouts.push(readout);
        }
        Ok(GateOutput::new(Word::from_bits(bits, n)?, readouts))
    }

    /// Scalar fallback for a channel without a dense row yet: each
    /// lane's combo resolves through the memoizing analytic path,
    /// filling the LUT — and densifying the row the moment its last
    /// combo lands, so later blocks of the same batch re-enter the
    /// sliced loop.
    fn resolve_cold_channel(&mut self, channel: usize, planes: &[[u64; 64]], lanes: usize) -> u64 {
        let mut out = 0u64;
        for s in 0..lanes {
            let mut combo = 0usize;
            for (j, plane) in planes.iter().enumerate() {
                combo |= (((plane[channel] >> s) & 1) as usize) << j;
            }
            out |= (self.channel_readout(channel, combo).logic as u64) << s;
        }
        out
    }

    /// The bit-sliced kernel: evaluates validated operand sets in
    /// blocks of up to 64 lanes and returns each set's output bit
    /// pattern.
    ///
    /// Per block: pack each operand's words set-major, transpose to
    /// lane-major bit-planes (`planes[j][c]` bit `s` = set `s`, input
    /// `j`, channel `c`), answer every dense channel with one
    /// word-parallel LUT lookup across all lanes, scalar-resolve cold
    /// channels (memoizing as it goes), then transpose the output
    /// planes back into per-set words. A ragged tail is just a block
    /// with fewer lanes — unused lanes are zeroed and masked out.
    fn sliced_words(&mut self, sets: &[OperandSet]) -> Vec<u64> {
        let n = self.gate.word_width();
        let m = self.gate.input_count();
        // analyze: allow(can-alloc) — per-batch output arena, sized
        // once to the request count; the hot loop below only fills it.
        let mut out = Vec::with_capacity(sets.len());
        // analyze: allow(can-alloc) — per-batch plane scratch:
        // input_count 64-lane bit-planes, reused across every block.
        let mut planes = vec![[0u64; 64]; m];
        for block in sets.chunks(64) {
            let lanes = block.len();
            let mask = lane_mask(lanes);
            for (j, plane) in planes.iter_mut().enumerate() {
                for (slot, set) in plane.iter_mut().zip(block) {
                    // Operand sets are validated to input_count words
                    // before the kernel is entered; a short set reads
                    // as zeros rather than panicking the batch.
                    *slot = set.words().get(j).map_or(0, |word| word.bits());
                }
                if let Some(tail) = plane.get_mut(lanes..) {
                    tail.fill(0);
                }
                transpose64(plane);
            }
            let mut out_planes = [0u64; 64];
            let mut dense_lookups = 0u64;
            // Channels without a dense row are deferred to a second
            // pass: the memoizing cold resolver needs `&mut self`,
            // which the dense-row borrow here precludes. Channel count
            // is the word width, so a u64 bitmask covers them all.
            let mut cold_channels = 0u64;
            for (c, out_plane) in out_planes.iter_mut().take(n).enumerate() {
                if let Some(Some(dense)) = self.dense.get(c) {
                    dense_lookups += lanes as u64;
                    *out_plane = if m <= SOP_MAX_INPUTS {
                        sop_lookup(dense, &planes, c, mask)
                    } else {
                        gather_lookup(dense, &planes, c, lanes)
                    };
                } else {
                    cold_channels |= 1 << c;
                }
            }
            while cold_channels != 0 {
                let c = cold_channels.trailing_zeros() as usize;
                cold_channels &= cold_channels - 1;
                let resolved = self.resolve_cold_channel(c, &planes, lanes);
                if let Some(out_plane) = out_planes.get_mut(c) {
                    *out_plane = resolved;
                }
            }
            self.hits += dense_lookups;
            transpose64(&mut out_planes);
            if let Some(block_out) = out_planes.get(..lanes) {
                // analyze: allow(can-alloc) — fills the arena
                // preallocated above; a block never outgrows it.
                out.extend_from_slice(block_out);
            }
        }
        out
    }
}

impl SpinWaveBackend for CachedBackend {
    fn name(&self) -> &'static str {
        "cached"
    }

    fn gate(&self) -> &ParallelGate {
        &self.gate
    }

    /// The split shard starts with a copy of the warm LUT — dense rows
    /// included — and fresh hit/miss counters.
    fn split(&self) -> Result<Box<dyn SpinWaveBackend>, GateError> {
        Ok(Box::new(CachedBackend {
            gate: self.gate.clone(),
            lut: self.lut.clone(),
            filled: self.filled.clone(),
            dense: self.dense.clone(),
            hits: 0,
            misses: 0,
        }))
    }

    fn lut_snapshot(&self) -> Option<LutSnapshot> {
        Some(LutSnapshot::from_gate(&self.gate, self.lut.clone()))
    }

    fn import_lut(&mut self, snapshot: &LutSnapshot) -> Result<usize, GateError> {
        snapshot.matches_gate(&self.gate)?;
        let combos = 1usize << self.gate.input_count();
        let mut imported = 0usize;
        let channels = self.lut.len();
        for (c, snap_row) in snapshot.rows().iter().enumerate().take(channels) {
            if snap_row.is_empty() || self.dense[c].is_some() {
                continue;
            }
            let row = &mut self.lut[c];
            if row.is_empty() {
                row.resize(combos, None);
            }
            let mut filled = self.filled[c];
            for (entry, snap_entry) in row.iter_mut().zip(snap_row) {
                if entry.is_none() && snap_entry.is_some() {
                    *entry = *snap_entry;
                    imported += 1;
                    filled += 1;
                }
            }
            self.filled[c] = filled;
            // A snapshot of a fully warmed gate re-enters the dense
            // form immediately: dense rows persist across restarts.
            if filled == combos {
                self.densify(c);
            }
        }
        Ok(imported)
    }

    fn evaluate(&mut self, inputs: &[Word]) -> Result<GateOutput, GateError> {
        self.gate.check_inputs(inputs)?;
        self.evaluate_prepared(inputs)
    }

    fn evaluate_batch(&mut self, sets: &[OperandSet]) -> Result<Vec<GateOutput>, GateError> {
        // Validate once up front; everything after runs infallible
        // prepared paths.
        for set in sets {
            self.gate.check_inputs(set.words())?;
        }
        let n = self.gate.word_width();
        let words = self.sliced_words(sets);
        // The sliced pass resolved every combo it met, so gathering the
        // readout side tables below is pure table reads (not counted
        // again — the kernel already accounted each lookup once).
        let mut outputs = Vec::with_capacity(sets.len());
        for (set, bits) in sets.iter().zip(words) {
            let mut readouts = Vec::with_capacity(n);
            for c in 0..n {
                let combo = combo_of(set.words(), c);
                let readout = match &self.dense[c] {
                    Some(dense) => dense.readouts[combo],
                    None => self.lut[c][combo].expect("combo resolved by the sliced pass"),
                };
                readouts.push(readout);
            }
            outputs.push(GateOutput::new(Word::from_bits(bits, n)?, readouts));
        }
        Ok(outputs)
    }

    fn evaluate_batch_logic(&mut self, sets: &[OperandSet]) -> Result<Vec<Word>, GateError> {
        for set in sets {
            self.gate.check_inputs(set.words())?;
        }
        let n = self.gate.word_width();
        self.sliced_words(sets)
            .into_iter()
            .map(|bits| Word::from_bits(bits, n))
            .collect()
    }

    fn warm_all(&mut self) {
        self.precompile();
    }

    fn lut_stats(&self) -> Option<LutStats> {
        Some(LutStats {
            hits: self.hits,
            misses: self.misses,
            dense_rows: self.dense_rows(),
            total_rows: self.gate.word_width(),
        })
    }
}

/// The full LLG micromagnetic simulator as a backend — the paper's
/// OOMMF methodology behind the same trait as the analytic engine.
///
/// The all-zeros calibration run happens once per backend and is reused
/// for every subsequent set (including across batches).
#[derive(Debug, Clone)]
pub struct MicromagBackend {
    gate: ParallelGate,
    settings: ValidationSettings,
    calibration: Option<Vec<(f64, f64)>>,
}

impl MicromagBackend {
    /// Wraps `gate` with default validation settings.
    pub fn new(gate: ParallelGate) -> Self {
        Self::with_settings(gate, ValidationSettings::default())
    }

    /// Wraps `gate` with custom validation settings.
    pub fn with_settings(gate: ParallelGate, settings: ValidationSettings) -> Self {
        MicromagBackend {
            gate,
            settings,
            calibration: None,
        }
    }

    /// The simulation settings in effect.
    pub fn settings(&self) -> &ValidationSettings {
        &self.settings
    }

    /// Whether the calibration run has already happened.
    pub fn is_calibrated(&self) -> bool {
        self.calibration.is_some()
    }
}

impl SpinWaveBackend for MicromagBackend {
    fn name(&self) -> &'static str {
        "micromag"
    }

    fn gate(&self) -> &ParallelGate {
        &self.gate
    }

    /// The split shard reuses the calibration run when one exists.
    fn split(&self) -> Result<Box<dyn SpinWaveBackend>, GateError> {
        Ok(Box::new(self.clone()))
    }

    fn evaluate(&mut self, inputs: &[Word]) -> Result<GateOutput, GateError> {
        let mut validator = MicromagValidator::with_settings(&self.gate, self.settings);
        if let Some(calibration) = self.calibration.clone() {
            validator.import_calibration(calibration)?;
        }
        let reading = validator.evaluate(inputs)?;
        self.calibration = validator.export_calibration();

        let n = self.gate.word_width();
        let mut readouts = Vec::with_capacity(n);
        for c in 0..n {
            readouts.push(ChannelReadout {
                channel: c,
                frequency: self.gate.channel_plan().channels()[c].frequency,
                amplitude: reading.amplitudes[c],
                phase: reading.phase_deltas[c],
                logic: reading.word.bit(c)?,
            });
        }
        Ok(GateOutput::new(reading.word, readouts))
    }
}

/// An open evaluation session: one gate, one backend, everything
/// precomputed once up front.
///
/// Obtained from [`ParallelGate::session`] or assembled directly with
/// [`GateSession::with_backend`] around any [`SpinWaveBackend`].
pub struct GateSession {
    backend: Box<dyn SpinWaveBackend>,
    sets_evaluated: u64,
}

impl GateSession {
    /// Opens a session evaluating `gate` on `choice`'s backend.
    ///
    /// # Errors
    ///
    /// Propagates backend construction failures.
    pub fn new(gate: ParallelGate, choice: BackendChoice) -> Result<Self, GateError> {
        Ok(GateSession {
            backend: choice.instantiate(gate)?,
            sets_evaluated: 0,
        })
    }

    /// Opens a session around an existing backend (e.g. a custom
    /// implementation of [`SpinWaveBackend`]).
    pub fn with_backend(backend: Box<dyn SpinWaveBackend>) -> Self {
        GateSession {
            backend,
            sets_evaluated: 0,
        }
    }

    /// The gate under evaluation.
    pub fn gate(&self) -> &ParallelGate {
        self.backend.gate()
    }

    /// The active backend's name (`"analytic"`, `"cached"`,
    /// `"micromag"`, …).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Operand sets evaluated through this session so far.
    pub fn sets_evaluated(&self) -> u64 {
        self.sets_evaluated
    }

    /// Evaluates one operand set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SpinWaveBackend::evaluate`].
    pub fn evaluate(&mut self, inputs: &[Word]) -> Result<GateOutput, GateError> {
        let output = self.backend.evaluate(inputs)?;
        self.sets_evaluated += 1;
        Ok(output)
    }

    /// Streams a batch of operand sets through the backend, preserving
    /// order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SpinWaveBackend::evaluate_batch`].
    pub fn evaluate_batch(&mut self, sets: &[OperandSet]) -> Result<Vec<GateOutput>, GateError> {
        let outputs = self.backend.evaluate_batch(sets)?;
        self.sets_evaluated += outputs.len() as u64;
        Ok(outputs)
    }

    /// Streams a batch through the backend's logic-only path: bare
    /// output words, no per-channel readout diagnostics (see
    /// [`SpinWaveBackend::evaluate_batch_logic`]). This is the serving
    /// drain's hot path — responses on the wire only carry logic words.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SpinWaveBackend::evaluate_batch`].
    pub fn evaluate_batch_logic(&mut self, sets: &[OperandSet]) -> Result<Vec<Word>, GateError> {
        let words = self.backend.evaluate_batch_logic(sets)?;
        self.sets_evaluated += words.len() as u64;
        Ok(words)
    }

    /// Eagerly warms the backend — the cached backend fills and
    /// densifies its whole LUT (see [`SpinWaveBackend::warm_all`]).
    pub fn warm_all(&mut self) {
        self.backend.warm_all();
    }

    /// The backend's LUT effectiveness counters, when it keeps one (see
    /// [`SpinWaveBackend::lut_stats`]).
    pub fn lut_stats(&self) -> Option<LutStats> {
        self.backend.lut_stats()
    }

    /// Evaluates a batch of tagged requests, echoing each caller tag on
    /// its result.
    ///
    /// Outputs come back in request order, but the tags make them safe
    /// to complete out of order — a coalescing scheduler that merged
    /// requests from many clients can route every `(tag, output)` back
    /// to its originator without positional bookkeeping.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SpinWaveBackend::evaluate_batch`].
    pub fn evaluate_batch_tagged(
        &mut self,
        requests: &[(RequestTag, OperandSet)],
    ) -> Result<Vec<(RequestTag, GateOutput)>, GateError> {
        let sets: Vec<OperandSet> = requests.iter().map(|(_, set)| set.clone()).collect();
        let outputs = self.evaluate_batch(&sets)?;
        Ok(requests.iter().map(|(tag, _)| *tag).zip(outputs).collect())
    }

    /// Opens an independent session over a split of this backend — the
    /// per-shard constructor serving runtimes use. The split carries
    /// warm state (LUT contents, micromagnetic calibration) but starts
    /// its own counters.
    ///
    /// # Errors
    ///
    /// Propagates backend construction failures.
    pub fn split_session(&self) -> Result<GateSession, GateError> {
        Ok(GateSession {
            backend: self.backend.split()?,
            sets_evaluated: 0,
        })
    }

    /// The backend's LUT contents, when it maintains one (see
    /// [`SpinWaveBackend::lut_snapshot`]).
    pub fn lut_snapshot(&self) -> Option<LutSnapshot> {
        self.backend.lut_snapshot()
    }

    /// Adopts previously exported LUT entries (see
    /// [`SpinWaveBackend::import_lut`]).
    ///
    /// # Errors
    ///
    /// Returns [`GateError::Persistence`] for a snapshot of a different
    /// gate.
    pub fn import_lut(&mut self, snapshot: &LutSnapshot) -> Result<usize, GateError> {
        self.backend.import_lut(snapshot)
    }

    /// Mutable access to the backend for implementation-specific calls
    /// (e.g. warming a cache).
    pub fn backend_mut(&mut self) -> &mut dyn SpinWaveBackend {
        self.backend.as_mut()
    }
}

impl std::fmt::Debug for GateSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GateSession")
            .field("backend", &self.backend.name())
            .field("sets_evaluated", &self.sets_evaluated)
            .finish()
    }
}

/// One frequency lane's slice of a multi-lane FDM batch: the lane's
/// session (its gate defines the channel group) and the operand sets
/// queued for it.
pub struct LaneBatch<'a> {
    /// The session serving this lane's gate.
    pub session: &'a mut GateSession,
    /// The lane's queued operand sets.
    pub sets: &'a [OperandSet],
}

/// Evaluates several frequency lanes of one waveguide as a single
/// multi-lane pass (frequency-division multiplexing, arXiv:2008.12220).
///
/// Physically all lanes ride one excitation of the shared medium —
/// their frequency bands are disjoint, so each gate's detectors see
/// only their own channels. Computationally the pass stacks the lanes'
/// channel groups: every lane's shapes are validated up front so a
/// malformed operand in *any* lane fails the whole batch before any
/// lane evaluates, then each lane's channel group decodes through its
/// own compiled prep. Returns one output vector per lane, in lane
/// order.
///
/// The all-or-nothing guarantee covers operand-*shape* errors only: a
/// backend failure mid-pass (possible for engines that can fail at
/// evaluation time, e.g. micromagnetics) aborts at the failing lane
/// with earlier lanes already evaluated — callers that need exact
/// once-only semantics must re-drive per request on error, which is
/// what the serving runtime's fallback does. That runtime also never
/// stacks micromagnetic lanes in the first place (their time-domain
/// simulation is per-gate, mirroring the no-fusion rule for
/// fingerprint batching); this function leaves that exclusion to the
/// caller.
///
/// # Errors
///
/// * [`GateError::InputCountMismatch`] / [`GateError::WordWidthMismatch`]
///   when any lane's operands are malformed (no lane evaluates).
/// * Backend failures from the first failing lane (earlier lanes have
///   evaluated).
pub fn evaluate_fdm_batch(lanes: &mut [LaneBatch<'_>]) -> Result<Vec<Vec<GateOutput>>, GateError> {
    for lane in lanes.iter() {
        for set in lane.sets {
            lane.session.gate().check_inputs(set.words())?;
        }
    }
    lanes
        .iter_mut()
        .map(|lane| lane.session.evaluate_batch(lane.sets))
        .collect()
}

/// The logic-only variant of [`evaluate_fdm_batch`]: identical
/// validation and lane semantics, but each lane answers bare output
/// words (no readout diagnostics) through
/// [`GateSession::evaluate_batch_logic`] — per-lane batches ride the
/// bit-sliced kernel when the lane's backend is cached.
///
/// # Errors
///
/// Same conditions as [`evaluate_fdm_batch`].
pub fn evaluate_fdm_batch_logic(lanes: &mut [LaneBatch<'_>]) -> Result<Vec<Vec<Word>>, GateError> {
    for lane in lanes.iter() {
        for set in lane.sets {
            lane.session.gate().check_inputs(set.words())?;
        }
    }
    lanes
        .iter_mut()
        .map(|lane| lane.session.evaluate_batch_logic(lane.sets))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::ParallelGateBuilder;
    use crate::truth::LogicFunction;
    use magnon_physics::waveguide::Waveguide;

    fn byte_majority() -> ParallelGate {
        ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(8)
            .inputs(3)
            .function(LogicFunction::Majority)
            .build()
            .unwrap()
    }

    fn sample_sets(count: usize) -> Vec<OperandSet> {
        (0..count)
            .map(|i| {
                let seed = 0x9E37u64.wrapping_mul(i as u64 + 1);
                OperandSet::new(vec![
                    Word::from_u8(seed as u8),
                    Word::from_u8((seed >> 8) as u8),
                    Word::from_u8((seed >> 16) as u8),
                ])
            })
            .collect()
    }

    #[test]
    fn analytic_batch_matches_single_shot() {
        let gate = byte_majority();
        let mut backend = AnalyticBackend::new(gate.clone());
        let sets = sample_sets(16);
        let batch = backend.evaluate_batch(&sets).unwrap();
        assert_eq!(batch.len(), 16);
        for (set, output) in sets.iter().zip(&batch) {
            let single = gate.evaluate(set.words()).unwrap();
            assert_eq!(single.word(), output.word());
        }
    }

    #[test]
    fn cached_agrees_with_analytic_and_counts_hits() {
        let gate = byte_majority();
        let mut cached = CachedBackend::new(gate.clone()).unwrap();
        let sets = sample_sets(8);
        let first = cached.evaluate_batch(&sets).unwrap();
        assert!(cached.cache_misses() > 0);
        let miss_count = cached.cache_misses();
        // Second pass over the same sets: pure hits.
        let second = cached.evaluate_batch(&sets).unwrap();
        assert_eq!(cached.cache_misses(), miss_count);
        assert!(cached.cache_hits() >= 64);
        for ((a, b), set) in first.iter().zip(&second).zip(&sets) {
            assert_eq!(a.word(), b.word());
            assert_eq!(a.word(), gate.evaluate(set.words()).unwrap().word());
        }
    }

    #[test]
    fn precompile_fills_the_whole_lut() {
        let gate = byte_majority();
        let mut cached = CachedBackend::new(gate).unwrap();
        cached.precompile();
        assert_eq!(cached.cache_misses(), 8 * 8); // n channels x 2^3 combos
        let sets = sample_sets(4);
        cached.evaluate_batch(&sets).unwrap();
        assert_eq!(cached.cache_misses(), 8 * 8, "serving must not recompute");
    }

    #[test]
    fn cached_rejects_oversized_luts() {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(2)
            .inputs(17)
            .build();
        // 17-input majority may not even build a layout; if it does, the
        // cached backend must refuse it.
        if let Ok(gate) = gate {
            assert!(matches!(
                CachedBackend::new(gate),
                Err(GateError::UnsupportedFunction { .. })
            ));
        }
    }

    #[test]
    fn session_tracks_counts_and_dispatches() {
        let gate = byte_majority();
        let mut session = gate.session(BackendChoice::Cached).unwrap();
        assert_eq!(session.backend_name(), "cached");
        assert_eq!(session.gate().word_width(), 8);
        let sets = sample_sets(5);
        session.evaluate_batch(&sets).unwrap();
        session.evaluate(sets[0].words()).unwrap();
        assert_eq!(session.sets_evaluated(), 6);
    }

    #[test]
    fn split_sessions_are_independent_but_warm() {
        let gate = byte_majority();
        let mut session = gate.session(BackendChoice::Cached).unwrap();
        let sets = sample_sets(8);
        session.evaluate_batch(&sets).unwrap();
        let warm_entries = session.lut_snapshot().unwrap().entry_count();
        assert!(warm_entries > 0);

        let mut shard = session.split_session().unwrap();
        assert_eq!(shard.backend_name(), "cached");
        assert_eq!(shard.sets_evaluated(), 0, "split starts fresh counters");
        // The shard inherited the warm LUT: replaying the same sets
        // computes nothing new.
        let replay = shard.evaluate_batch(&sets).unwrap();
        assert_eq!(
            shard.lut_snapshot().unwrap().entry_count(),
            warm_entries,
            "no new entries on a warm shard"
        );
        for (a, b) in session.evaluate_batch(&sets).unwrap().iter().zip(&replay) {
            assert_eq!(a.word(), b.word());
        }
        // Work on the shard does not leak back into the parent.
        assert_eq!(session.sets_evaluated(), 16);
    }

    #[test]
    fn tagged_batches_echo_tags_in_request_order() {
        let gate = byte_majority();
        let mut session = gate.session(BackendChoice::Analytic).unwrap();
        let requests: Vec<(RequestTag, OperandSet)> = sample_sets(6)
            .into_iter()
            .enumerate()
            .map(|(i, set)| (0xF00D_0000 + i as RequestTag * 3, set))
            .collect();
        let tagged = session.evaluate_batch_tagged(&requests).unwrap();
        assert_eq!(tagged.len(), 6);
        for ((tag, output), (expected_tag, set)) in tagged.iter().zip(&requests) {
            assert_eq!(tag, expected_tag);
            assert_eq!(output.word(), gate.evaluate(set.words()).unwrap().word());
        }
        assert_eq!(session.sets_evaluated(), 6);
    }

    #[test]
    fn lut_import_skips_recomputation() {
        let gate = byte_majority();
        let mut warm = CachedBackend::new(gate.clone()).unwrap();
        warm.precompile();
        let snapshot = warm.lut_snapshot().unwrap();

        let mut cold = CachedBackend::new(gate.clone()).unwrap();
        let imported = cold.import_lut(&snapshot).unwrap();
        assert_eq!(imported, 8 * 8);
        cold.evaluate_batch(&sample_sets(8)).unwrap();
        assert_eq!(cold.cache_misses(), 0, "imported LUT serves everything");

        // Importing into a mismatched gate is rejected.
        let other = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(4)
            .inputs(3)
            .build()
            .unwrap();
        let mut mismatched = CachedBackend::new(other).unwrap();
        assert!(matches!(
            mismatched.import_lut(&snapshot),
            Err(GateError::Persistence { .. })
        ));

        // Non-LUT backends ignore imports and report none.
        let mut analytic = AnalyticBackend::new(gate);
        assert!(analytic.lut_snapshot().is_none());
        assert_eq!(analytic.import_lut(&snapshot).unwrap(), 0);
    }

    #[test]
    fn fdm_batch_matches_per_lane_evaluation_and_fails_whole() {
        use crate::gate::LaneId;
        // Two distinct designs on disjoint bands: the paper-default
        // 10–80 GHz majority and a 100 GHz-based XOR lane.
        let maj = byte_majority();
        let xor = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(8)
            .inputs(2)
            .function(LogicFunction::Xor)
            .base_frequency(100e9)
            .on_lane(LaneId(1))
            .build()
            .unwrap();
        assert!(!maj.frequency_lane().overlaps(xor.frequency_lane()));
        let mut maj_session = maj.session(BackendChoice::Cached).unwrap();
        let mut xor_session = xor.session(BackendChoice::Analytic).unwrap();
        let maj_sets = sample_sets(5);
        let xor_sets: Vec<OperandSet> = sample_sets(3)
            .into_iter()
            .map(|s| OperandSet::new(s.words()[..2].to_vec()))
            .collect();
        let outputs = evaluate_fdm_batch(&mut [
            LaneBatch {
                session: &mut maj_session,
                sets: &maj_sets,
            },
            LaneBatch {
                session: &mut xor_session,
                sets: &xor_sets,
            },
        ])
        .unwrap();
        assert_eq!(outputs.len(), 2);
        for (out, set) in outputs[0].iter().zip(&maj_sets) {
            assert_eq!(out.word(), maj.evaluate(set.words()).unwrap().word());
        }
        for (out, set) in outputs[1].iter().zip(&xor_sets) {
            assert_eq!(out.word(), xor.evaluate(set.words()).unwrap().word());
        }
        assert_eq!(maj_session.sets_evaluated(), 5);
        assert_eq!(xor_session.sets_evaluated(), 3);

        // A malformed operand in the SECOND lane fails the whole pass
        // before the first lane evaluates anything.
        let bad = vec![OperandSet::new(vec![Word::from_u8(1)])];
        let err = evaluate_fdm_batch(&mut [
            LaneBatch {
                session: &mut maj_session,
                sets: &maj_sets,
            },
            LaneBatch {
                session: &mut xor_session,
                sets: &bad,
            },
        ]);
        assert!(matches!(err, Err(GateError::InputCountMismatch { .. })));
        assert_eq!(
            maj_session.sets_evaluated(),
            5,
            "the all-or-nothing pass must not half-evaluate"
        );
    }

    #[test]
    fn sessions_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<GateSession>();
        assert_send::<Box<dyn SpinWaveBackend>>();
    }

    #[test]
    fn default_choice_is_analytic() {
        let gate = byte_majority();
        let session = gate.session(BackendChoice::default()).unwrap();
        assert_eq!(session.backend_name(), "analytic");
    }

    #[test]
    fn batch_propagates_operand_errors() {
        let gate = byte_majority();
        let mut session = gate.session(BackendChoice::Analytic).unwrap();
        let bad = OperandSet::new(vec![Word::from_u8(1)]);
        assert!(matches!(
            session.evaluate_batch(&[bad]),
            Err(GateError::InputCountMismatch { .. })
        ));
        let narrow = OperandSet::new(vec![Word::zeros(4).unwrap(); 3]);
        assert!(matches!(
            session.evaluate_batch(&[narrow]),
            Err(GateError::WordWidthMismatch { .. })
        ));
    }

    #[test]
    fn operand_set_conversions() {
        let words = vec![Word::from_u8(1), Word::from_u8(2)];
        let a: OperandSet = words.clone().into();
        let b: OperandSet = words.as_slice().into();
        assert_eq!(a, b);
        assert_eq!(a.words().len(), 2);
        assert_eq!(a.clone().into_words(), words);
    }

    #[test]
    fn xor_gates_work_through_every_analytic_backend() {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(4)
            .inputs(2)
            .function(LogicFunction::Xor)
            .build()
            .unwrap();
        let a = Word::from_bits(0b0011, 4).unwrap();
        let b = Word::from_bits(0b0101, 4).unwrap();
        for choice in [BackendChoice::Analytic, BackendChoice::Cached] {
            let mut session = gate.session(choice).unwrap();
            let out = session.evaluate(&[a, b]).unwrap();
            assert_eq!(
                out.word().bits(),
                0b0110,
                "{} backend",
                session.backend_name()
            );
        }
    }
}
