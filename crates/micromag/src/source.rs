//! Microwave excitation sources (transducer models).
//!
//! The paper excites spin waves with ME cells placed along the
//! waveguide; electrically they apply a localized oscillating in-plane
//! field. [`Antenna`] models one such transducer: a sinusoidal field
//! `h(t) = A sin(2πft + φ) x̂` over a short x-interval, with an optional
//! linear ramp that suppresses the broadband switch-on transient.
//!
//! Phase encodes logic: φ = 0 for logic `0`, φ = π for logic `1`
//! (paper §II).

use crate::error::SimError;
use crate::field::FieldTerm;
use crate::mesh::Mesh;
use magnon_math::Vec3;

/// A localized sinusoidal field source.
///
/// # Examples
///
/// ```
/// use magnon_micromag::source::Antenna;
/// use magnon_math::constants::{GHZ, NM};
///
/// # fn main() -> Result<(), magnon_micromag::SimError> {
/// // Logic-1 transducer: 20 GHz, phase π, 10 nm footprint at x = 50 nm.
/// let antenna = Antenna::new(50.0 * NM, 10.0 * NM, 20.0 * GHZ, 5.0e3, std::f64::consts::PI)?;
/// assert_eq!(antenna.frequency(), 20.0 * GHZ);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Antenna {
    x_start: f64,
    extent: f64,
    frequency: f64,
    amplitude: f64,
    phase: f64,
    ramp_time: f64,
    axis: Vec3,
}

impl Antenna {
    /// Creates an antenna occupying `[x_start, x_start + extent)` that
    /// applies `amplitude·sin(2πft + phase)` along x.
    ///
    /// * `x_start`, `extent` — position and footprint along the guide, m.
    /// * `frequency` — drive frequency, Hz.
    /// * `amplitude` — peak field, A/m.
    /// * `phase` — drive phase, rad (0 = logic 0, π = logic 1).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for non-positive extent or
    /// frequency, negative start or amplitude, or non-finite phase.
    pub fn new(
        x_start: f64,
        extent: f64,
        frequency: f64,
        amplitude: f64,
        phase: f64,
    ) -> Result<Self, SimError> {
        if !(x_start.is_finite() && x_start >= 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "x_start",
                value: x_start,
            });
        }
        if !(extent.is_finite() && extent > 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "extent",
                value: extent,
            });
        }
        if !(frequency.is_finite() && frequency > 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "frequency",
                value: frequency,
            });
        }
        if !(amplitude.is_finite() && amplitude >= 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "amplitude",
                value: amplitude,
            });
        }
        if !phase.is_finite() {
            return Err(SimError::InvalidParameter {
                parameter: "phase",
                value: phase,
            });
        }
        Ok(Antenna {
            x_start,
            extent,
            frequency,
            amplitude,
            phase,
            ramp_time: 0.0,
            axis: Vec3::X,
        })
    }

    /// Adds a linear amplitude ramp over `ramp_time` seconds (reduces
    /// the switch-on transient's spectral splatter).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a negative ramp time.
    pub fn with_ramp(mut self, ramp_time: f64) -> Result<Self, SimError> {
        if !(ramp_time.is_finite() && ramp_time >= 0.0) {
            return Err(SimError::InvalidParameter {
                parameter: "ramp_time",
                value: ramp_time,
            });
        }
        self.ramp_time = ramp_time;
        Ok(self)
    }

    /// Changes the field axis (default x̂).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a zero axis.
    pub fn with_axis(mut self, axis: Vec3) -> Result<Self, SimError> {
        self.axis = axis.normalized().ok_or(SimError::InvalidParameter {
            parameter: "axis",
            value: 0.0,
        })?;
        Ok(self)
    }

    /// Start of the footprint in metres.
    pub fn x_start(&self) -> f64 {
        self.x_start
    }

    /// Footprint extent in metres.
    pub fn extent(&self) -> f64 {
        self.extent
    }

    /// Centre of the footprint in metres.
    pub fn centre(&self) -> f64 {
        self.x_start + self.extent / 2.0
    }

    /// Drive frequency in Hz.
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// Peak drive field in A/m.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Drive phase in radians.
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Instantaneous drive field magnitude at time `t`.
    pub fn drive(&self, t: f64) -> f64 {
        let envelope = if self.ramp_time > 0.0 {
            (t / self.ramp_time).clamp(0.0, 1.0)
        } else {
            1.0
        };
        envelope
            * self.amplitude
            * (2.0 * std::f64::consts::PI * self.frequency * t + self.phase).sin()
    }

    /// Validates that the antenna footprint lies inside `mesh`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RegionOutOfBounds`] otherwise.
    pub fn check_fits(&self, mesh: &Mesh) -> Result<(), SimError> {
        mesh.columns_in(self.x_start, self.extent).map(|_| ())
    }
}

impl FieldTerm for Antenna {
    fn add_field(&self, mesh: &Mesh, _m: &[Vec3], t: f64, h: &mut [Vec3]) {
        let Ok(cols) = mesh.columns_in(self.x_start, self.extent) else {
            return;
        };
        let drive = self.axis * self.drive(t);
        let nx = mesh.nx();
        for j in 0..mesh.ny() {
            let row = j * nx;
            for i in cols.clone() {
                h[row + i] += drive;
            }
        }
    }

    fn name(&self) -> &'static str {
        "antenna"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_math::constants::{GHZ, NM};
    use std::f64::consts::PI;

    fn antenna() -> Antenna {
        Antenna::new(50.0 * NM, 10.0 * NM, 20.0 * GHZ, 1.0e4, 0.0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Antenna::new(-1.0, 1e-9, 1e9, 1.0, 0.0).is_err());
        assert!(Antenna::new(0.0, 0.0, 1e9, 1.0, 0.0).is_err());
        assert!(Antenna::new(0.0, 1e-9, -1e9, 1.0, 0.0).is_err());
        assert!(Antenna::new(0.0, 1e-9, 1e9, -1.0, 0.0).is_err());
        assert!(Antenna::new(0.0, 1e-9, 1e9, 1.0, f64::NAN).is_err());
        assert!(antenna().with_ramp(-1.0).is_err());
        assert!(antenna().with_axis(Vec3::ZERO).is_err());
    }

    #[test]
    fn drive_waveform() {
        let a = antenna();
        assert_eq!(a.drive(0.0), 0.0);
        // Quarter period of 20 GHz = 12.5 ps: sin peaks.
        let quarter = 1.0 / (4.0 * 20.0 * GHZ);
        assert!((a.drive(quarter) - 1.0e4).abs() < 1.0);
    }

    #[test]
    fn phase_pi_flips_sign() {
        let a0 = antenna();
        let a1 = Antenna::new(50.0 * NM, 10.0 * NM, 20.0 * GHZ, 1.0e4, PI).unwrap();
        let t = 3.3e-12;
        assert!((a0.drive(t) + a1.drive(t)).abs() < 1e-6);
    }

    #[test]
    fn ramp_scales_envelope() {
        let a = antenna().with_ramp(1e-10).unwrap();
        let quarter = 1.0 / (4.0 * 20.0 * GHZ); // 12.5 ps, 1/8 through ramp
        let unramped = antenna().drive(quarter);
        assert!((a.drive(quarter) - unramped * 0.125).abs() < 1.0);
        // After the ramp the envelope is 1.
        let late = 1e-10 + quarter;
        assert!((a.drive(late).abs() - antenna().drive(late).abs()).abs() < 1e-6);
    }

    #[test]
    fn field_applied_only_in_footprint() {
        let mesh = Mesh::line(200.0 * NM, 2.0 * NM, 50.0 * NM, 1.0 * NM).unwrap();
        let a = antenna();
        let m = vec![Vec3::Z; mesh.cell_count()];
        let mut h = vec![Vec3::ZERO; mesh.cell_count()];
        let quarter = 1.0 / (4.0 * 20.0 * GHZ);
        a.add_field(&mesh, &m, quarter, &mut h);
        // Footprint: cells 25..30 (50..60 nm at 2 nm cells).
        assert!(h[24].norm() < 1e-9);
        assert!((h[25].x - 1.0e4).abs() < 1.0);
        assert!((h[29].x - 1.0e4).abs() < 1.0);
        assert!(h[30].norm() < 1e-9);
    }

    #[test]
    fn fits_check() {
        let mesh = Mesh::line(200.0 * NM, 2.0 * NM, 50.0 * NM, 1.0 * NM).unwrap();
        assert!(antenna().check_fits(&mesh).is_ok());
        let off = Antenna::new(195.0 * NM, 10.0 * NM, 20.0 * GHZ, 1.0, 0.0).unwrap();
        assert!(off.check_fits(&mesh).is_err());
    }

    #[test]
    fn centre_is_midpoint() {
        assert!((antenna().centre() - 55.0 * NM).abs() < 1e-15);
    }
}
