//! Request handles and runtime statistics.

use crate::error::ServeError;
use magnon_core::backend::{OperandSet, RequestTag};
use magnon_core::gate::GateOutput;
use magnon_core::sync::atomic::{AtomicU64, Ordering};
use magnon_core::sync::mpsc;
use magnon_core::GateError;

/// Handle to a gate registered with a [`crate::Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateId(pub(crate) usize);

impl GateId {
    /// The registration index (stable for the scheduler's lifetime).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One request travelling to a worker shard.
pub(crate) struct EvalJob {
    /// Registration index of the target gate.
    pub gate: usize,
    /// Scheduler-assigned tag echoed on the completion.
    pub tag: RequestTag,
    /// The operand words.
    pub set: OperandSet,
    /// Completion channel back to the submitting [`Ticket`].
    pub reply: mpsc::Sender<(RequestTag, Result<GateOutput, GateError>)>,
}

/// A pending evaluation: redeem with [`Ticket::wait`].
///
/// Tickets are independent — they can be awaited in any order, from any
/// thread, regardless of how the scheduler batched the underlying
/// requests (each completion carries its request tag).
#[derive(Debug)]
pub struct Ticket {
    pub(crate) tag: RequestTag,
    pub(crate) rx: mpsc::Receiver<(RequestTag, Result<GateOutput, GateError>)>,
}

impl Ticket {
    /// The tag the scheduler stamped on this request.
    pub fn tag(&self) -> RequestTag {
        self.tag
    }

    /// Blocks until the evaluation completes.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Gate`] when the evaluation itself failed.
    /// * [`ServeError::Shutdown`] when the owning worker went away
    ///   before answering.
    pub fn wait(self) -> Result<GateOutput, ServeError> {
        match self.rx.recv() {
            Ok((tag, result)) => {
                debug_assert_eq!(tag, self.tag, "completion routed to the wrong ticket");
                result.map_err(ServeError::Gate)
            }
            Err(mpsc::RecvError) => Err(ServeError::Shutdown),
        }
    }

    /// Blocks until the evaluation completes or `timeout` elapses.
    ///
    /// Takes `&self`, so a timed-out ticket is not lost: the request is
    /// still in flight and the ticket can be waited on again (remote
    /// clients retry with fresh deadlines; the network writer pump must
    /// never park forever on a completion that will not come). A ticket
    /// redeems exactly once — after a successful wait, further calls
    /// report [`ServeError::Shutdown`].
    ///
    /// # Errors
    ///
    /// * [`ServeError::Timeout`] when `timeout` elapses first.
    /// * The conditions of [`Ticket::wait`].
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Result<GateOutput, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok((tag, result)) => {
                debug_assert_eq!(tag, self.tag, "completion routed to the wrong ticket");
                result.map_err(ServeError::Gate)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Shutdown),
        }
    }

    /// Polls for the completion without blocking: `Ok(None)` while the
    /// evaluation is still in flight. Like [`Ticket::wait_timeout`],
    /// this redeems the ticket on the first `Ok(Some(_))` — poll loops
    /// (e.g. a writer pump multiplexing many tickets) should drop the
    /// ticket once it yields.
    ///
    /// # Errors
    ///
    /// The conditions of [`Ticket::wait`].
    pub fn try_wait(&self) -> Result<Option<GateOutput>, ServeError> {
        match self.rx.try_recv() {
            Ok((tag, result)) => {
                debug_assert_eq!(tag, self.tag, "completion routed to the wrong ticket");
                result.map(Some).map_err(ServeError::Gate)
            }
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(ServeError::Shutdown),
        }
    }
}

/// Lock-free counters shared between client handles and worker shards.
#[derive(Debug, Default)]
pub(crate) struct SharedStats {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub drain_passes: AtomicU64,
    pub batches: AtomicU64,
    pub coalesced_requests: AtomicU64,
    pub cross_gate_passes: AtomicU64,
    pub max_drain: AtomicU64,
    pub fused_batches: AtomicU64,
    pub fused_requests: AtomicU64,
    pub fdm_batches: AtomicU64,
    pub fdm_lanes: AtomicU64,
    pub fdm_requests: AtomicU64,
}

impl SharedStats {
    /// Records one drain cycle: `requests` served through `batches`
    /// `evaluate_batch` calls spanning `gates_touched` distinct gates
    /// (fusion can make `batches < gates_touched`).
    pub fn record_drain(&self, requests: u64, batches: u64, gates_touched: u64) {
        // ordering: Relaxed — monotonic stat counters; the reply
        // channel orders the result delivery, nothing synchronizes
        // through these.
        self.drain_passes.fetch_add(1, Ordering::Relaxed);
        self.batches.fetch_add(batches, Ordering::Relaxed);
        if requests > 1 {
            self.coalesced_requests
                .fetch_add(requests, Ordering::Relaxed);
        }
        if gates_touched > 1 {
            // ordering: Relaxed — monotonic stat counter.
            self.cross_gate_passes.fetch_add(1, Ordering::Relaxed);
        }
        // ordering: Relaxed — monotonic high-water mark, stat only.
        self.max_drain.fetch_max(requests, Ordering::Relaxed);
    }

    /// Records one fused batch: `requests` jobs for two or more
    /// distinct gates evaluated through a single compatible session.
    pub fn record_fusion(&self, requests: u64) {
        // ordering: Relaxed — monotonic stat counters, dashboards only.
        self.fused_batches.fetch_add(1, Ordering::Relaxed);
        self.fused_requests.fetch_add(requests, Ordering::Relaxed);
    }

    /// Records one multi-lane FDM pass: `requests` jobs across `lanes`
    /// frequency lanes of one waveguide, stacked into a single
    /// whole-waveguide excitation.
    pub fn record_fdm_pass(&self, lanes: u64, requests: u64) {
        // ordering: Relaxed — monotonic stat counters, dashboards only.
        self.fdm_batches.fetch_add(1, Ordering::Relaxed);
        self.fdm_lanes.fetch_add(lanes, Ordering::Relaxed);
        self.fdm_requests.fetch_add(requests, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> SchedulerStats {
        SchedulerStats {
            // ordering: Relaxed throughout — a point-in-time stats
            // snapshot; each counter is read independently and no
            // reader synchronizes through them.
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            drain_passes: self.drain_passes.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced_requests: self.coalesced_requests.load(Ordering::Relaxed),
            // ordering: Relaxed — same snapshot contract as above.
            cross_gate_passes: self.cross_gate_passes.load(Ordering::Relaxed),
            max_drain: self.max_drain.load(Ordering::Relaxed),
            fused_batches: self.fused_batches.load(Ordering::Relaxed),
            fused_requests: self.fused_requests.load(Ordering::Relaxed),
            fdm_batches: self.fdm_batches.load(Ordering::Relaxed),
            fdm_lanes: self.fdm_lanes.load(Ordering::Relaxed),
            fdm_requests: self.fdm_requests.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of the runtime's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerStats {
    /// Requests accepted by [`crate::Scheduler::submit`] /
    /// [`crate::Scheduler::try_submit`].
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Worker drain cycles (each serves everything queued at that
    /// moment, up to the batch cap).
    pub drain_passes: u64,
    /// `evaluate_batch` calls issued (one per gate touched per drain).
    pub batches: u64,
    /// Requests that shared their drain cycle with at least one other
    /// request — the coalescing win.
    pub coalesced_requests: u64,
    /// Drain cycles that batched across *different* gates sharing a
    /// waveguide shard.
    pub cross_gate_passes: u64,
    /// Largest single drain observed.
    pub max_drain: u64,
    /// Cross-waveguide fused batches issued: one `evaluate_batch` call
    /// carrying requests for two or more distinct (but
    /// design-compatible) gates.
    pub fused_batches: u64,
    /// Requests that rode a fused batch.
    pub fused_requests: u64,
    /// Multi-lane FDM passes issued: one stacked evaluation carrying
    /// two or more frequency lanes of a single waveguide
    /// (frequency-division multiplexing, arXiv:2008.12220).
    pub fdm_batches: u64,
    /// Lanes coalesced across those FDM passes.
    pub fdm_lanes: u64,
    /// Requests that rode an FDM pass.
    pub fdm_requests: u64,
}

impl SchedulerStats {
    /// Mean requests per drain cycle (1.0 = no coalescing happening).
    pub fn mean_drain(&self) -> f64 {
        if self.drain_passes == 0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / self.drain_passes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_record_coalescing() {
        let stats = SharedStats::default();
        stats.record_drain(1, 1, 1);
        stats.record_drain(7, 2, 2);
        // A fused drain: 5 requests for 3 gates served as 1 batch.
        stats.record_drain(5, 1, 3);
        stats.record_fusion(5);
        let snap = stats.snapshot();
        assert_eq!(snap.drain_passes, 3);
        assert_eq!(snap.batches, 4);
        assert_eq!(snap.coalesced_requests, 12);
        assert_eq!(snap.cross_gate_passes, 2);
        assert_eq!(snap.max_drain, 7);
        assert_eq!(snap.fused_batches, 1);
        assert_eq!(snap.fused_requests, 5);
    }

    #[test]
    fn mean_drain_handles_empty() {
        assert_eq!(SchedulerStats::default().mean_drain(), 0.0);
    }

    #[test]
    fn ticket_deadlines_and_polling() {
        use magnon_core::gate::ParallelGateBuilder;
        use magnon_core::word::Word;
        use magnon_physics::waveguide::Waveguide;
        use std::time::Duration;

        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(8)
            .inputs(3)
            .build()
            .unwrap();
        let output = gate
            .evaluate(&[
                Word::from_u8(0x0F),
                Word::from_u8(0x33),
                Word::from_u8(0x55),
            ])
            .unwrap();

        // In flight: polling sees nothing, a deadline elapses without
        // consuming the ticket.
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket { tag: 7, rx };
        assert!(matches!(ticket.try_wait(), Ok(None)));
        assert!(matches!(
            ticket.wait_timeout(Duration::from_millis(5)),
            Err(ServeError::Timeout)
        ));
        // The completion arrives late: the same ticket still redeems.
        tx.send((7, Ok(output.clone()))).unwrap();
        match ticket.try_wait() {
            Ok(Some(out)) => assert_eq!(out.word(), output.word()),
            other => panic!("expected the completion, got {other:?}"),
        }

        // A gate error lands as ServeError::Gate through wait_timeout.
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket { tag: 8, rx };
        tx.send((
            8,
            Err(GateError::InputCountMismatch {
                expected: 3,
                actual: 1,
            }),
        ))
        .unwrap();
        assert!(matches!(
            ticket.wait_timeout(Duration::from_secs(1)),
            Err(ServeError::Gate(_))
        ));

        // A vanished worker is Shutdown on every path.
        let (tx, rx) = mpsc::channel::<(RequestTag, Result<GateOutput, GateError>)>();
        let ticket = Ticket { tag: 9, rx };
        drop(tx);
        assert!(matches!(ticket.try_wait(), Err(ServeError::Shutdown)));
        assert!(matches!(
            ticket.wait_timeout(Duration::from_millis(1)),
            Err(ServeError::Shutdown)
        ));
    }
}
