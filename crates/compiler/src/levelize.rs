//! Levelization: topological wavefronts with ASAP scheduling.
//!
//! Every gate node (MAJ-3, XOR-2) is assigned the earliest level its
//! operands allow: `level = 1 + max(level of operand gates)`, with
//! free nodes (inputs, constants, inverted readouts) passing their
//! producers' level through unchanged. Gates of independent subgraphs
//! therefore share levels — the concurrency the placer spreads across
//! `(waveguide, lane)` slots and the pipelined executor exploits
//! across shards.

use magnon_circuits::netlist::{Circuit, NodeId};

/// The wavefront decomposition of a circuit.
#[derive(Debug, Clone)]
pub struct Levelized {
    levels: Vec<Vec<NodeId>>,
    node_level: Vec<Option<usize>>,
}

impl Levelized {
    /// Gate nodes per wavefront, earliest first. Every node in a level
    /// depends only on nodes of strictly earlier levels (or on free
    /// nodes), so a whole level can be in flight at once.
    pub fn levels(&self) -> &[Vec<NodeId>] {
        &self.levels
    }

    /// Number of wavefronts — the circuit's gate depth.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The widest wavefront — the concurrency demand placement sizes
    /// its slot table for.
    pub fn max_level_width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The wavefront index of gate node `id` (`None` for free nodes
    /// and foreign handles).
    pub fn level_of(&self, id: NodeId) -> Option<usize> {
        self.node_level.get(id.index()).copied().flatten()
    }
}

/// Computes ASAP wavefronts for `circuit`.
pub fn levelize(circuit: &Circuit) -> Levelized {
    let kinds = circuit.node_kinds();
    // Logical depth of every node: gates sit one past their deepest
    // operand, free nodes inherit it.
    let mut depth = vec![0usize; kinds.len()];
    let mut levels: Vec<Vec<NodeId>> = Vec::new();
    let mut node_level = vec![None; kinds.len()];
    for (id, kind) in circuit.node_ids().zip(&kinds) {
        let operand_depth = kind
            .operands()
            .iter()
            .map(|op| depth[op.index()])
            .max()
            .unwrap_or(0);
        if kind.gate_shape().is_some() {
            let d = operand_depth + 1;
            depth[id.index()] = d;
            if levels.len() < d {
                levels.resize_with(d, Vec::new);
            }
            levels[d - 1].push(id);
            node_level[id.index()] = Some(d - 1);
        } else {
            depth[id.index()] = operand_depth;
        }
    }
    Levelized { levels, node_level }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_subgraphs_share_levels() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let x = c.input();
        let y = c.input();
        // Subgraph 1: a chain of two XORs. Subgraph 2: one XOR.
        let p = c.xor2(a, b).unwrap();
        let q = c.xor2(p, a).unwrap();
        let r = c.xor2(x, y).unwrap();
        c.mark_output(q).unwrap();
        c.mark_output(r).unwrap();
        let lv = levelize(&c);
        assert_eq!(lv.depth(), 2);
        // ASAP puts the independent r next to p, not after the chain.
        assert_eq!(lv.levels()[0], vec![p, r]);
        assert_eq!(lv.levels()[1], vec![q]);
        assert_eq!(lv.max_level_width(), 2);
        assert_eq!(lv.level_of(q), Some(1));
        assert_eq!(lv.level_of(a), None);
    }

    #[test]
    fn free_nodes_pass_depth_through() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        let b = c.input();
        let x = c.xor2(a, b).unwrap();
        let n = c.not(x).unwrap();
        // The NOT is free: the consumer still sits one level past x.
        let m = c.maj3(n, a, b).unwrap();
        c.mark_output(m).unwrap();
        let lv = levelize(&c);
        assert_eq!(lv.level_of(x), Some(0));
        assert_eq!(lv.level_of(n), None);
        assert_eq!(lv.level_of(m), Some(1));
    }

    #[test]
    fn gateless_circuits_have_no_levels() {
        let mut c = Circuit::new(8).unwrap();
        let a = c.input();
        c.mark_output(a).unwrap();
        let lv = levelize(&c);
        assert_eq!(lv.depth(), 0);
        assert_eq!(lv.max_level_width(), 0);
    }
}
