//! Instrumented stand-ins for `std::sync` / `std::thread` /
//! `std::time` (`cfg(mcheck)` only).
//!
//! Every type here keeps the std API surface the serving stack uses,
//! but routes each operation through the execution controller in
//! [`super::exec`]: the op is recorded into the trace and becomes a
//! *yield point* where the schedule policy may preempt. Blocking ops
//! (channel recv, mutex lock, park, join) never block the OS thread
//! while a model-checked execution is active — they register with the
//! controller and hand the baton over.
//!
//! Outside an execution (plain unit tests compiled with `--cfg
//! mcheck`), everything still *works*: atomics and mutexes hit their
//! real std counterparts directly, and channel waits fall back to a
//! per-object condvar side table. Only the instrumentation is skipped.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex as StdMutex;
use std::sync::{Arc, TryLockError};
use std::time::Duration;

use super::exec::{self, op, BlockResult, ObjectId};

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Instrumented atomics. The shim wraps the real std atomic (so the
/// stored values and orderings behave exactly as in a normal build)
/// and records every access as a yield point.
pub mod atomic {
    use super::*;
    pub use std::sync::atomic::Ordering;

    macro_rules! int_atomic {
        ($name:ident, $std:path, $prim:ty) => {
            /// Instrumented drop-in for the std atomic of the same name.
            pub struct $name {
                id: ObjectId,
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub fn new(v: $prim) -> Self {
                    Self {
                        id: exec::new_object_id(),
                        inner: <$std>::new(v),
                    }
                }

                /// As `std`: loads the value with `order`.
                pub fn load(&self, order: Ordering) -> $prim {
                    exec::yield_point(op::ATOMIC_LOAD, self.id, 0);
                    self.inner.load(order)
                }

                /// As `std`: stores `v` with `order`.
                pub fn store(&self, v: $prim, order: Ordering) {
                    exec::yield_point(op::ATOMIC_STORE, self.id, v as u64);
                    self.inner.store(v, order);
                }

                /// As `std`: swaps in `v`, returning the old value.
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    exec::yield_point(op::ATOMIC_RMW, self.id, v as u64);
                    self.inner.swap(v, order)
                }

                /// As `std`: adds `v`, returning the old value.
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    exec::yield_point(op::ATOMIC_RMW, self.id, v as u64);
                    self.inner.fetch_add(v, order)
                }

                /// As `std`: subtracts `v`, returning the old value.
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    exec::yield_point(op::ATOMIC_RMW, self.id, v as u64);
                    self.inner.fetch_sub(v, order)
                }

                /// As `std`: stores the max of the current value and
                /// `v`, returning the old value.
                pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    exec::yield_point(op::ATOMIC_RMW, self.id, v as u64);
                    self.inner.fetch_max(v, order)
                }

                /// As `std`: stores the min of the current value and
                /// `v`, returning the old value.
                pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                    exec::yield_point(op::ATOMIC_RMW, self.id, v as u64);
                    self.inner.fetch_min(v, order)
                }

                /// As `std`: compare-and-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    exec::yield_point(op::ATOMIC_RMW, self.id, new as u64);
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// As `std`: consumes the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }

                /// As `std`: mutable access implies exclusivity — not
                /// an instrumented access.
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl fmt::Debug for $name {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    // ordering: Relaxed — uninstrumented diagnostic
                    // read; Debug must not perturb the schedule.
                    f.debug_tuple(stringify!($name))
                        .field(&self.inner.load(Ordering::Relaxed))
                        .finish()
                }
            }
        };
    }

    int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    int_atomic!(AtomicI64, std::sync::atomic::AtomicI64, i64);

    /// Instrumented drop-in for `std::sync::atomic::AtomicBool`.
    pub struct AtomicBool {
        id: ObjectId,
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic with the given initial value.
        pub fn new(v: bool) -> Self {
            Self {
                id: exec::new_object_id(),
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// As `std`: loads the value with `order`.
        pub fn load(&self, order: Ordering) -> bool {
            exec::yield_point(op::ATOMIC_LOAD, self.id, 0);
            self.inner.load(order)
        }

        /// As `std`: stores `v` with `order`.
        pub fn store(&self, v: bool, order: Ordering) {
            exec::yield_point(op::ATOMIC_STORE, self.id, v as u64);
            self.inner.store(v, order);
        }

        /// As `std`: swaps in `v`, returning the old value.
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            exec::yield_point(op::ATOMIC_RMW, self.id, v as u64);
            self.inner.swap(v, order)
        }

        /// As `std`: compare-and-exchange.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            exec::yield_point(op::ATOMIC_RMW, self.id, new as u64);
            self.inner.compare_exchange(current, new, success, failure)
        }

        /// As `std`: consumes the atomic, returning the value.
        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            // ordering: Relaxed — uninstrumented diagnostic read;
            // Debug must not perturb the schedule.
            f.debug_tuple("AtomicBool")
                .field(&self.inner.load(Ordering::Relaxed))
                .finish()
        }
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub use std::sync::{LockResult, PoisonError};

/// Instrumented drop-in for `std::sync::Mutex`.
///
/// The data still lives behind a real std mutex; under a model-checked
/// execution contention is detected with `try_lock` (serialized
/// execution means a failed `try_lock` can only mean another *task*
/// holds the guard across a yield) and the loser blocks on the
/// controller instead of the OS.
pub struct Mutex<T: ?Sized> {
    id: ObjectId,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `t`.
    pub fn new(t: T) -> Self {
        Self {
            id: exec::new_object_id(),
            inner: StdMutex::new(t),
        }
    }

    /// As `std`: consumes the mutex, returning the data.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// As `std`: acquires the lock, blocking until available. Never
    /// returns `Err` — the shim heals poisoning (the checker reports
    /// panics itself; cascading them as poison errors only obscures
    /// the original failure).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        loop {
            exec::yield_point(op::LOCK_ACQUIRE, self.id, 0);
            match self.inner.try_lock() {
                Ok(g) => {
                    return Ok(MutexGuard {
                        id: self.id,
                        inner: Some(g),
                    })
                }
                Err(TryLockError::Poisoned(p)) => {
                    return Ok(MutexGuard {
                        id: self.id,
                        inner: Some(p.into_inner()),
                    })
                }
                Err(TryLockError::WouldBlock) => {
                    if exec::modeled() {
                        // No yield between the failed try_lock and the
                        // block: execution is serialized, so the holder
                        // cannot release (and wake) in between — the
                        // wake is guaranteed to come after we block.
                        match exec::block_on(self.id, None) {
                            BlockResult::Aborted => {
                                panic!("mcheck: execution aborted while waiting for a lock")
                            }
                            _ => continue,
                        }
                    } else {
                        // Offline: a real contended lock — block for
                        // real.
                        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                        return Ok(MutexGuard {
                            id: self.id,
                            inner: Some(g),
                        });
                    }
                }
            }
        }
    }

    /// As `std`: attempts the lock without blocking.
    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, TryLockError<MutexGuard<'_, T>>> {
        exec::yield_point(op::LOCK_ACQUIRE, self.id, 1);
        match self.inner.try_lock() {
            Ok(g) => Ok(MutexGuard {
                id: self.id,
                inner: Some(g),
            }),
            Err(TryLockError::Poisoned(p)) => Ok(MutexGuard {
                id: self.id,
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
        }
    }

    /// As `std`: mutable access implies exclusivity.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Guard for the instrumented [`Mutex`]; releasing it records the
/// unlock and wakes blocked lockers.
pub struct MutexGuard<'a, T: ?Sized> {
    id: ObjectId,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present until drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present until drop")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first so a woken task's try_lock can
        // succeed, then let the policy reschedule at the release.
        self.inner.take();
        exec::wake_key(self.id);
        exec::OFFLINE_WAITERS.notify(self.id);
        exec::yield_point(op::LOCK_RELEASE, self.id, 0);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// mpsc channels
// ---------------------------------------------------------------------------

/// Instrumented drop-in for `std::sync::mpsc` (the subset the serving
/// stack uses: `channel`, `sync_channel`, send / try_send / recv /
/// recv_timeout / try_recv, and drop-driven disconnection).
///
/// Error types are re-used from std — they are plain public structs,
/// so callers match on the exact same variants either way.
pub mod mpsc {
    use super::*;
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    struct Chan<T> {
        id: ObjectId,
        inner: StdMutex<ChanInner<T>>,
    }

    struct ChanInner<T> {
        queue: VecDeque<T>,
        /// `None` for the unbounded `channel()` flavor.
        cap: Option<usize>,
        senders: usize,
        receiver_alive: bool,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, ChanInner<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Wakes modeled and offline waiters after a state change.
        fn notify(&self) {
            exec::wake_key(self.id);
            exec::OFFLINE_WAITERS.notify(self.id);
        }
    }

    /// Creates an unbounded channel, as `std::sync::mpsc::channel`.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            id: exec::new_object_id(),
            inner: StdMutex::new(ChanInner {
                queue: VecDeque::new(),
                cap: None,
                senders: 1,
                receiver_alive: true,
            }),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    /// Creates a bounded channel, as `std::sync::mpsc::sync_channel`.
    ///
    /// # Panics
    ///
    /// `bound == 0` (rendezvous channels) is not modeled — nothing in
    /// the workspace uses it.
    pub fn sync_channel<T>(bound: usize) -> (SyncSender<T>, Receiver<T>) {
        assert!(
            bound > 0,
            "mcheck mpsc shim: rendezvous channels (bound 0) not modeled"
        );
        let chan = Arc::new(Chan {
            id: exec::new_object_id(),
            inner: StdMutex::new(ChanInner {
                queue: VecDeque::new(),
                cap: Some(bound),
                senders: 1,
                receiver_alive: true,
            }),
        });
        (SyncSender(Arc::clone(&chan)), Receiver(chan))
    }

    /// Asynchronous (unbounded) sending half.
    pub struct Sender<T>(Arc<Chan<T>>);

    impl<T> Sender<T> {
        /// As `std`: queues `t`; fails only when the receiver is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            {
                let mut inner = self.0.lock();
                if !inner.receiver_alive {
                    return Err(SendError(t));
                }
                inner.queue.push_back(t);
            }
            self.0.notify();
            exec::yield_point(op::CHAN_SEND, self.0.id, 0);
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            drop_sender(&self.0);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    /// Bounded sending half.
    pub struct SyncSender<T>(Arc<Chan<T>>);

    impl<T> SyncSender<T> {
        /// As `std`: queues `t`, blocking while the buffer is full.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let item = t;
            loop {
                {
                    let mut inner = self.0.lock();
                    if !inner.receiver_alive {
                        return Err(SendError(item));
                    }
                    let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
                    if !full {
                        inner.queue.push_back(item);
                        drop(inner);
                        self.0.notify();
                        exec::yield_point(op::CHAN_SEND, self.0.id, 0);
                        return Ok(());
                    }
                    if exec::modeled() {
                        drop(inner);
                        match exec::block_on(self.0.id, None) {
                            BlockResult::Aborted => return Err(SendError(item)),
                            _ => continue,
                        }
                    }
                    // Offline: wait on the channel's condvar; the wait
                    // releases the inner lock atomically, so no lost
                    // wakeup.
                    let cv = exec::OFFLINE_WAITERS.condvar(self.0.id);
                    let _g = cv.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
                // `item` is still ours; loop and retry.
                continue;
            }
        }

        /// As `std`: queues `t` without blocking.
        pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
            {
                let mut inner = self.0.lock();
                if !inner.receiver_alive {
                    return Err(TrySendError::Disconnected(t));
                }
                if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
                    drop(inner);
                    exec::yield_point(op::CHAN_FULL, self.0.id, 0);
                    return Err(TrySendError::Full(t));
                }
                inner.queue.push_back(t);
            }
            self.0.notify();
            exec::yield_point(op::CHAN_SEND, self.0.id, 0);
            Ok(())
        }
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            SyncSender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for SyncSender<T> {
        fn drop(&mut self) {
            drop_sender(&self.0);
        }
    }

    impl<T> fmt::Debug for SyncSender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("SyncSender").finish_non_exhaustive()
        }
    }

    fn drop_sender<T>(chan: &Arc<Chan<T>>) {
        let last = {
            let mut inner = chan.lock();
            inner.senders -= 1;
            inner.senders == 0
        };
        if last {
            chan.notify();
            exec::yield_point(op::CHAN_CLOSED, chan.id, 0);
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(Arc<Chan<T>>);

    impl<T> Receiver<T> {
        /// As `std`: blocks until a value or all senders gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            loop {
                let inner = self.0.lock();
                match self.take(inner) {
                    Poll::Ready(v) => return Ok(v),
                    Poll::Disconnected => return Err(RecvError),
                    Poll::Empty(guard) => {
                        if exec::modeled() {
                            drop(guard);
                            match exec::block_on(self.0.id, None) {
                                BlockResult::Aborted => return Err(RecvError),
                                _ => continue,
                            }
                        }
                        let cv = exec::OFFLINE_WAITERS.condvar(self.0.id);
                        let _g = cv.wait(guard).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }

        /// As `std`: blocks up to `timeout`. A timeout consumes
        /// nothing — the value (if one arrives later) stays queued.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let offline_deadline = std::time::Instant::now() + timeout;
            loop {
                let inner = self.0.lock();
                match self.take(inner) {
                    Poll::Ready(v) => return Ok(v),
                    Poll::Disconnected => return Err(RecvTimeoutError::Disconnected),
                    Poll::Empty(guard) => {
                        if exec::modeled() {
                            drop(guard);
                            match exec::block_on(self.0.id, exec::deadline_after(timeout)) {
                                BlockResult::TimedOut => return Err(RecvTimeoutError::Timeout),
                                BlockResult::Aborted => return Err(RecvTimeoutError::Disconnected),
                                BlockResult::Woken => continue,
                            }
                        }
                        let remaining = offline_deadline
                            .checked_duration_since(std::time::Instant::now())
                            .unwrap_or(Duration::ZERO);
                        if remaining.is_zero() {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        // Timed-out or woken, the loop re-checks: the
                        // deadline math above reports Timeout.
                        let cv = exec::OFFLINE_WAITERS.condvar(self.0.id);
                        let _unused = cv
                            .wait_timeout(guard, remaining)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }

        /// As `std`: non-blocking poll.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let inner = self.0.lock();
            match self.take(inner) {
                Poll::Ready(v) => Ok(v),
                Poll::Disconnected => Err(TryRecvError::Disconnected),
                Poll::Empty(guard) => {
                    drop(guard);
                    exec::yield_point(op::CHAN_EMPTY, self.0.id, 0);
                    Err(TryRecvError::Empty)
                }
            }
        }

        /// As `std`: a blocking iterator that ends when every sender is
        /// gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// As [`std::sync::mpsc::Iter`]: each `next` is a blocking `recv`.
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Receiver<T> {
        /// One locked poll step shared by the recv flavors.
        fn take<'g>(&self, mut guard: std::sync::MutexGuard<'g, ChanInner<T>>) -> Poll<'g, T> {
            if let Some(v) = guard.queue.pop_front() {
                drop(guard);
                // A pop frees bounded capacity: wake blocked senders.
                self.0.notify();
                exec::yield_point(op::CHAN_RECV, self.0.id, 0);
                return Poll::Ready(v);
            }
            if guard.senders == 0 {
                return Poll::Disconnected;
            }
            Poll::Empty(guard)
        }
    }

    enum Poll<'g, T> {
        Ready(T),
        Disconnected,
        Empty(std::sync::MutexGuard<'g, ChanInner<T>>),
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            {
                let mut inner = self.0.lock();
                inner.receiver_alive = false;
                inner.queue.clear();
            }
            self.0.notify();
            exec::yield_point(op::CHAN_CLOSED, self.0.id, 1);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

/// Instrumented drop-in for `std::thread`. Spawned closures still run
/// on real OS threads, but execution is serialized by the controller's
/// baton; `sleep` advances the virtual clock instead of stalling, and
/// park/unpark/join are modeled waits.
pub mod thread {
    use super::*;
    pub use std::thread::Result;

    /// As `std::thread::Builder` (only `name` is supported — the
    /// stack size knob is unused in this workspace).
    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// Creates a builder.
        pub fn new() -> Builder {
            Builder::default()
        }

        /// Names the thread-to-be.
        pub fn name(mut self, name: String) -> Builder {
            self.name = Some(name);
            self
        }

        /// Spawns the thread, registering it as a modeled task when an
        /// execution is active.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let task = exec::register_task();
            let mut builder = std::thread::Builder::new();
            if let Some(name) = self.name {
                builder = builder.name(name);
            }
            let inner = builder.spawn(move || {
                if let Some(id) = task {
                    exec::enter_task(id);
                }
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                if task.is_some() {
                    exec::exit_task();
                }
                match result {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            })?;
            let thread = Thread {
                task,
                inner: inner.thread().clone(),
            };
            Ok(JoinHandle {
                task,
                thread,
                inner,
            })
        }
    }

    /// As `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn thread")
    }

    /// As `std::thread::JoinHandle`.
    pub struct JoinHandle<T> {
        task: Option<exec::TaskId>,
        thread: Thread,
        inner: std::thread::JoinHandle<T>,
    }

    impl<T> JoinHandle<T> {
        /// As `std`: waits for the thread to finish, returning its
        /// result (or the panic payload).
        pub fn join(self) -> Result<T> {
            if let Some(id) = self.task {
                exec::yield_point(op::JOIN, exec::join_key(id), id as u64);
                while !exec::task_finished(id) {
                    match exec::block_on(exec::join_key(id), None) {
                        BlockResult::Aborted => break,
                        _ => continue,
                    }
                }
            }
            // The modeled task has exited (or the run aborted and the
            // target is unwinding); the real join is then prompt.
            self.inner.join()
        }

        /// As `std`: whether the thread has finished.
        pub fn is_finished(&self) -> bool {
            match self.task {
                Some(id) => exec::task_finished(id),
                None => self.inner.is_finished(),
            }
        }

        /// As `std`: a handle to the underlying thread.
        pub fn thread(&self) -> &Thread {
            &self.thread
        }
    }

    impl<T> fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("JoinHandle").finish_non_exhaustive()
        }
    }

    /// As `std::thread::Thread` (name + unpark).
    #[derive(Debug, Clone)]
    pub struct Thread {
        task: Option<exec::TaskId>,
        inner: std::thread::Thread,
    }

    impl Thread {
        /// As `std`: the thread's name.
        pub fn name(&self) -> Option<&str> {
            self.inner.name()
        }

        /// As `std`: makes a pending or future `park` on this thread
        /// return.
        pub fn unpark(&self) {
            match self.task {
                Some(id) => exec::set_park_token(id),
                None => self.inner.unpark(),
            }
        }
    }

    /// As `std::thread::current`.
    pub fn current() -> Thread {
        Thread {
            task: exec::current_task_id(),
            inner: std::thread::current(),
        }
    }

    /// As `std::thread::park`. Modeled: consumes a pending unpark
    /// token or blocks until one is set.
    pub fn park() {
        match exec::current_task_id() {
            Some(id) => {
                exec::yield_point(op::PARK, exec::park_key(id), 0);
                if exec::take_park_token() {
                    return;
                }
                let _ = exec::block_on(exec::park_key(id), None);
                let _ = exec::take_park_token();
            }
            None => std::thread::park(),
        }
    }

    /// As `std::thread::park_timeout`. Modeled: the policy may fire
    /// the timeout at any yield (virtual clock jumps to the deadline).
    pub fn park_timeout(dur: Duration) {
        match exec::current_task_id() {
            Some(id) => {
                exec::yield_point(
                    op::PARK,
                    exec::park_key(id),
                    dur.as_nanos().min(u64::MAX as u128) as u64,
                );
                if exec::take_park_token() {
                    return;
                }
                let _ = exec::block_on(exec::park_key(id), exec::deadline_after(dur));
                let _ = exec::take_park_token();
            }
            None => std::thread::park_timeout(dur),
        }
    }

    /// As `std::thread::sleep`. Modeled: advances the virtual clock —
    /// never stalls the exploration.
    pub fn sleep(dur: Duration) {
        if exec::modeled() {
            let nanos = dur.as_nanos().min(u64::MAX as u128) as u64;
            exec::advance_clock(nanos);
            exec::yield_point(op::SLEEP, 0, nanos);
        } else {
            std::thread::sleep(dur);
        }
    }

    /// As `std::thread::yield_now`. Modeled: a pure scheduling point.
    pub fn yield_now() {
        if exec::modeled() {
            exec::yield_point(op::YIELD, 0, 0);
        } else {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------------
// time
// ---------------------------------------------------------------------------

/// Virtualized time (`cfg(mcheck)` only): `Instant` reads the
/// execution's logical clock, so traces — and every latency-derived
/// branch in the code under test — are deterministic and replayable.
pub mod time {
    use super::*;
    pub use std::time::Duration;

    /// Drop-in for `std::time::Instant` over the virtual clock.
    /// Outside an execution it falls back to real monotonic time, so
    /// plain tests behave normally.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    pub struct Instant {
        nanos: u64,
    }

    impl Instant {
        /// The current (virtual or real) monotonic time.
        pub fn now() -> Instant {
            Instant {
                nanos: exec::now_nanos(),
            }
        }

        /// As `std`: time since `earlier` (saturating to zero).
        pub fn duration_since(&self, earlier: Instant) -> Duration {
            Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
        }

        /// As `std`: `None` when `earlier` is in the future.
        pub fn checked_duration_since(&self, earlier: Instant) -> Option<Duration> {
            self.nanos
                .checked_sub(earlier.nanos)
                .map(Duration::from_nanos)
        }

        /// As `std`: saturating variant.
        pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
            self.duration_since(earlier)
        }

        /// As `std`: time since this instant.
        pub fn elapsed(&self) -> Duration {
            Instant::now().duration_since(*self)
        }

        /// As `std`: checked forward shift.
        pub fn checked_add(&self, duration: Duration) -> Option<Instant> {
            let nanos = u64::try_from(duration.as_nanos()).ok()?;
            self.nanos.checked_add(nanos).map(|nanos| Instant { nanos })
        }

        /// As `std`: checked backward shift.
        pub fn checked_sub(&self, duration: Duration) -> Option<Instant> {
            let nanos = u64::try_from(duration.as_nanos()).ok()?;
            self.nanos.checked_sub(nanos).map(|nanos| Instant { nanos })
        }
    }

    impl std::ops::Add<Duration> for Instant {
        type Output = Instant;
        fn add(self, rhs: Duration) -> Instant {
            self.checked_add(rhs)
                .expect("overflow when adding duration to instant")
        }
    }

    impl std::ops::AddAssign<Duration> for Instant {
        fn add_assign(&mut self, rhs: Duration) {
            *self = *self + rhs;
        }
    }

    impl std::ops::Sub<Duration> for Instant {
        type Output = Instant;
        fn sub(self, rhs: Duration) -> Instant {
            self.checked_sub(rhs)
                .expect("overflow when subtracting duration from instant")
        }
    }

    impl std::ops::Sub<Instant> for Instant {
        type Output = Duration;
        fn sub(self, rhs: Instant) -> Duration {
            self.duration_since(rhs)
        }
    }
}
