//! Schedule policies: how the controller picks the next task at every
//! yield point.
//!
//! Both policies are deterministic functions of their constructor
//! arguments, which is what makes failures replayable: rerunning the
//! same policy over the same body takes the same interleaving and
//! records a byte-identical trace.

use magnon_core::sync::mcheck::{Choice, ChoicePoint, Policy};
// lint: allow(std-sync-import) — the decision-count channel is checker
// bookkeeping, not modeled state; the façade would perturb the schedules.
use std::sync::{Arc, Mutex};

/// Seeded random interleaving search.
///
/// The workhorse: by default the current task keeps running
/// (run-to-block, like a real uncontended scheduler), and with
/// `preempt_percent` probability per yield point the policy instead
/// picks uniformly among every schedulable option — other runnable
/// tasks *and* pending timeouts (firing a timeout models the timed
/// wait returning late, which real timed waits are allowed to do).
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    state: u64,
    preempt_percent: u8,
}

impl RandomPolicy {
    /// A policy for `seed`, preempting at `preempt_percent`% of yield
    /// points (clamped to 100).
    pub fn new(seed: u64, preempt_percent: u8) -> Self {
        RandomPolicy {
            // splitmix64 pre-scramble so nearby seeds diverge at once.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            preempt_percent: preempt_percent.min(100),
        }
    }

    /// splitmix64 — tiny, seedable, good enough for schedule sampling.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Policy for RandomPolicy {
    fn choose(&mut self, point: &ChoicePoint<'_>) -> Choice {
        let total = point.runnable.len() + point.timeoutable.len();
        debug_assert!(
            total > 0,
            "controller consulted policy with nothing schedulable"
        );
        let current_runnable = point.runnable.contains(&point.current);
        if current_runnable && total > 1 && (self.next_u64() % 100) as u8 >= self.preempt_percent {
            return Choice::Run(point.current);
        }
        let idx = (self.next_u64() % total as u64) as usize;
        if idx < point.runnable.len() {
            Choice::Run(point.runnable[idx])
        } else {
            Choice::FireTimeout(point.timeoutable[idx - point.runnable.len()])
        }
    }
}

/// The canonical option order at one choice point: continue the
/// current task first (the no-preemption default), then the other
/// runnable tasks, then pending timeouts. [`GuidedPolicy`] indexes
/// into this; option 0 is always "don't preempt" when that is
/// possible.
fn options(point: &ChoicePoint<'_>) -> Vec<Choice> {
    let mut opts = Vec::with_capacity(point.runnable.len() + point.timeoutable.len());
    if point.runnable.contains(&point.current) {
        opts.push(Choice::Run(point.current));
    }
    for &t in point.runnable {
        if t != point.current {
            opts.push(Choice::Run(t));
        }
    }
    for &t in point.timeoutable {
        opts.push(Choice::FireTimeout(t));
    }
    opts
}

/// Replays a decision path: at choice point `d` the policy takes
/// option `path[d]` (0 beyond the path's end — i.e. run to block).
/// Records how many options each choice point offered into a shared
/// vector so [`BoundedExplorer`] can branch.
#[derive(Debug)]
pub struct GuidedPolicy {
    path: Vec<usize>,
    depth: usize,
    counts: Arc<Mutex<Vec<usize>>>,
}

impl GuidedPolicy {
    /// A policy following `path`, reporting option counts through
    /// `counts`.
    pub fn new(path: Vec<usize>, counts: Arc<Mutex<Vec<usize>>>) -> Self {
        GuidedPolicy {
            path,
            depth: 0,
            counts,
        }
    }
}

impl Policy for GuidedPolicy {
    fn choose(&mut self, point: &ChoicePoint<'_>) -> Choice {
        let opts = options(point);
        self.counts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(opts.len());
        let pick = self.path.get(self.depth).copied().unwrap_or(0);
        self.depth += 1;
        opts[pick.min(opts.len() - 1)]
    }
}

/// Bounded-preemption exhaustive exploration (stateless model
/// checking, as in CHESS): enumerates every schedule whose decision
/// path diverges from the run-to-block default in at most
/// `max_preemptions` places. For small configs that is a *complete*
/// search of the low-preemption schedule space — where the vast
/// majority of real concurrency bugs live.
#[derive(Debug)]
pub struct BoundedExplorer {
    next_path: Option<Vec<usize>>,
    max_preemptions: usize,
}

impl BoundedExplorer {
    /// An explorer allowing `max_preemptions` non-default choices per
    /// schedule.
    pub fn new(max_preemptions: usize) -> Self {
        BoundedExplorer {
            next_path: Some(Vec::new()),
            max_preemptions,
        }
    }

    /// The next decision path to run, or `None` when the bounded space
    /// is exhausted.
    pub fn next_path(&self) -> Option<Vec<usize>> {
        self.next_path.clone()
    }

    /// Advances depth-first given the just-finished run: `path` is the
    /// path it followed, `counts` the option count at each of its
    /// choice points.
    pub fn advance(&mut self, path: &[usize], counts: &[usize]) {
        for d in (0..counts.len()).rev() {
            let val = path.get(d).copied().unwrap_or(0);
            if val + 1 >= counts[d] {
                continue;
            }
            let preemptions = path[..d.min(path.len())].iter().filter(|&&v| v > 0).count() + 1;
            if preemptions > self.max_preemptions {
                continue;
            }
            let mut next = path[..d.min(path.len())].to_vec();
            next.resize(d, 0);
            next.push(val + 1);
            self.next_path = Some(next);
            return;
        }
        self.next_path = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let mut a = RandomPolicy::new(42, 30);
        let mut b = RandomPolicy::new(42, 30);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = RandomPolicy::new(43, 30);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_explorer_enumerates_binary_tree() {
        // Three choice points, two options each, budget 1: the default
        // path plus one single-preemption path per depth = 4 schedules.
        let mut ex = BoundedExplorer::new(1);
        let mut seen = Vec::new();
        while let Some(path) = ex.next_path() {
            seen.push(path.clone());
            ex.advance(&path, &[2, 2, 2]);
        }
        assert_eq!(seen, vec![vec![], vec![0, 0, 1], vec![0, 1], vec![1]]);
    }

    #[test]
    fn bounded_explorer_budget_two_covers_pairs() {
        let mut ex = BoundedExplorer::new(2);
        let mut n = 0;
        while let Some(path) = ex.next_path() {
            n += 1;
            ex.advance(&path, &[2, 2, 2]);
        }
        // paths with ≤2 nonzero entries over 3 binary choice points:
        // C(3,0) + C(3,1) + C(3,2) = 1 + 3 + 3 = 7.
        assert_eq!(n, 7);
    }
}
