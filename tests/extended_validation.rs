//! Extended integration tests: 2D meshes, XOR gates, inverted readout
//! and absorber effectiveness — the behaviours beyond the paper's
//! headline experiment that the library must still get right.

use spinwave_parallel::core::micromag_bridge::{MicromagValidator, ValidationSettings};
use spinwave_parallel::core::prelude::*;
use spinwave_parallel::math::constants::{GHZ, NM, NS};
use spinwave_parallel::micromag::absorber::Absorber;
use spinwave_parallel::micromag::probe::Probe;
use spinwave_parallel::micromag::sim::SimulationBuilder;
use spinwave_parallel::micromag::source::Antenna;
use spinwave_parallel::physics::waveguide::Waveguide;

fn fast_settings() -> ValidationSettings {
    ValidationSettings {
        cell_size: Some(2.0e-9),
        duration: Some(2.5e-9),
        ..ValidationSettings::default()
    }
}

#[test]
fn two_dimensional_mesh_propagates_waves() {
    // Same experiment as 1D, resolved with 5 transverse rows: the wave
    // still arrives and no transverse instability develops.
    let guide = Waveguide::paper_default().unwrap();
    let f = 20.0 * GHZ;
    let output = SimulationBuilder::new(guide, 400.0 * NM)
        .unwrap()
        .cell_size(2.0 * NM)
        .unwrap()
        .rows(5)
        .unwrap()
        .add_antenna(
            Antenna::new(80.0 * NM, 10.0 * NM, f, 2.0e4, 0.0)
                .unwrap()
                .with_ramp(2.0 / f)
                .unwrap(),
        )
        .add_probe(Probe::point(250.0 * NM))
        .duration(1.0 * NS)
        .unwrap()
        .run()
        .unwrap();
    let steady = output.series()[0].after(0.5 * NS).unwrap();
    assert!(
        steady.amplitude_at(f).unwrap() > 1e-5,
        "wave did not arrive in 2D"
    );
    // Magnetization stays on the unit sphere everywhere.
    for m in output.final_magnetization() {
        assert!((m.norm() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn xor_gate_validates_micromagnetically() {
    let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
        .channels(2)
        .inputs(2)
        .function(LogicFunction::Xor)
        .build()
        .unwrap();
    let mut validator = MicromagValidator::with_settings(&gate, fast_settings());
    // Channel 0: 0^0 = 0, channel 1: 0^1 = 1.
    let a = Word::zeros(2).unwrap();
    let b = Word::from_bits(0b10, 2).unwrap();
    let reading = validator.evaluate(&[a, b]).unwrap();
    assert_eq!(reading.word.bits(), 0b10, "XOR micromagnetic decode");
    // The cancelled channel must show much weaker tone amplitude.
    assert!(
        reading.amplitudes[1] < 0.4 * reading.amplitudes[0],
        "cancellation: {:.3e} vs {:.3e}",
        reading.amplitudes[1],
        reading.amplitudes[0]
    );
    // 1^1 = 0 again full amplitude.
    let ones = Word::ones(2).unwrap();
    let reading = validator.evaluate(&[ones, ones]).unwrap();
    assert_eq!(reading.word.bits(), 0b00);
}

#[test]
fn inverted_readout_validates_micromagnetically() {
    // Inverted detectors decode the complemented majority with no
    // software negation — the half-wavelength offset does it.
    let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
        .channels(2)
        .inputs(3)
        .function(LogicFunction::Majority)
        .readout(ReadoutMode::Inverted)
        .build()
        .unwrap();
    let mut validator = MicromagValidator::with_settings(&gate, fast_settings());
    let zeros = Word::zeros(2).unwrap();
    let ones = Word::ones(2).unwrap();
    // MAJ(0,0,0) = 0, inverted -> 1 on both channels.
    let reading = validator.evaluate(&[zeros, zeros, zeros]).unwrap();
    assert_eq!(reading.word.bits(), 0b11, "inverted all-zeros must read 1");
    // MAJ(1,1,1) = 1, inverted -> 0.
    let reading = validator.evaluate(&[ones, ones, ones]).unwrap();
    assert_eq!(reading.word.bits(), 0b00, "inverted all-ones must read 0");
}

#[test]
fn absorber_suppresses_end_reflection() {
    // Drive a wave toward the far end and compare the standing-wave
    // ripple with and without the absorber: reflections create spatial
    // amplitude modulation at λ/2; an absorber flattens it.
    let guide = Waveguide::paper_default().unwrap();
    let f = 20.0 * GHZ;
    let run = |absorber: Option<Absorber>| {
        let output = SimulationBuilder::new(guide, 600.0 * NM)
            .unwrap()
            .cell_size(2.0 * NM)
            .unwrap()
            .absorber(absorber)
            .add_antenna(
                Antenna::new(100.0 * NM, 10.0 * NM, f, 1.0e4, 0.0)
                    .unwrap()
                    .with_ramp(2.0 / f)
                    .unwrap(),
            )
            // Two probes λ/4 apart mid-guide: a pure travelling wave has
            // equal tone amplitude at both; a standing wave does not.
            .add_probe(Probe::point(330.0 * NM))
            .add_probe(Probe::point(330.0 * NM + 22.0 * NM))
            .duration(3.0 * NS)
            .unwrap()
            .run()
            .unwrap();
        let a = output.series()[0]
            .after(2.0 * NS)
            .unwrap()
            .amplitude_at(f)
            .unwrap();
        let b = output.series()[1]
            .after(2.0 * NS)
            .unwrap()
            .amplitude_at(f)
            .unwrap();
        (a - b).abs() / a.max(b)
    };
    let ripple_without = run(None);
    let ripple_with = run(Some(Absorber::new(120.0 * NM, 0.5).unwrap()));
    assert!(
        ripple_with < 0.6 * ripple_without,
        "absorber must reduce standing-wave ripple: {ripple_with:.3} vs {ripple_without:.3}"
    );
    assert!(
        ripple_with < 0.15,
        "residual ripple too high: {ripple_with:.3}"
    );
}

#[test]
fn thermal_noise_perturbs_but_small_signal_survives() {
    use spinwave_parallel::micromag::thermal::ThermalField;

    // A 20 GHz wave at 30 K: the tone must still dominate the noise
    // floor at the probe (graceful degradation, not collapse). At this
    // cell volume the 100+ K thermal field already rivals the drive --
    // nanoscale gates are thermally hard, which is what the robustness
    // module quantifies.
    let guide = Waveguide::paper_default().unwrap();
    let f = 20.0 * GHZ;
    let builder = SimulationBuilder::new(guide, 400.0 * NM)
        .unwrap()
        .cell_size(2.0 * NM)
        .unwrap()
        .add_antenna(
            Antenna::new(80.0 * NM, 10.0 * NM, f, 2.0e4, 0.0)
                .unwrap()
                .with_ramp(2.0 / f)
                .unwrap(),
        )
        .add_probe(Probe::point(250.0 * NM))
        .duration(1.5 * NS)
        .unwrap();
    let dt = builder.effective_time_step().unwrap();
    let mut solver = builder.build_solver().unwrap();
    let thermal = ThermalField::new(guide.material(), solver.mesh(), 30.0, dt, 2024).unwrap();
    solver.add_field_term(Box::new(thermal));
    let mut recorder =
        spinwave_parallel::micromag::probe::Recorder::new(vec![Probe::point(250.0 * NM)], 4, dt)
            .unwrap();
    solver.run_recorded(1.5 * NS, dt, &mut recorder).unwrap();
    let series = recorder.into_series().unwrap();
    let steady = series[0].after(0.75 * NS).unwrap();
    let tone = steady.amplitude_at(f).unwrap();
    let off_tone = steady.amplitude_at(1.37 * f).unwrap();
    assert!(tone > 1e-5, "tone lost in thermal noise: {tone:.3e}");
    assert!(
        tone > 3.0 * off_tone,
        "SNR too low at 30 K: tone {tone:.3e} vs floor {off_tone:.3e}"
    );
}
