//! Deterministic concurrency model checker for the serving stack.
//!
//! This crate only does something useful when the workspace is built
//! with `RUSTFLAGS="--cfg mcheck"`: that switches the
//! [`magnon_core::sync`] façade from plain `std` re-exports to
//! instrumented shims, and every atomic access, lock transition,
//! channel op, spawn/join, park/unpark, and clock read in
//! `magnon-serve` / `magnon-net` becomes a *yield point* where a
//! schedule policy decides which thread runs next. On top of that this
//! crate provides:
//!
//! * `policy` — schedule policies: seeded random interleaving search
//!   (`RandomPolicy`) and bounded-preemption exhaustive enumeration
//!   (`BoundedExplorer`);
//! * `harness` — the exploration driver: run a closure under many
//!   schedules, dedupe interleavings by trace hash, and surface the
//!   first invariant violation with a replay token that reproduces the
//!   failing run byte-for-byte;
//! * `scenarios` — the serving-stack invariant suite (every ticket
//!   completes exactly once, the queue gauge never goes negative and
//!   drains to zero, shutdown joins all workers under an injected
//!   panic, timed-out tickets stay redeemable, rebalancer moves lose
//!   nothing, and the executor's harvest park loop never loses a
//!   wakeup).
//!
//! Run it:
//!
//! ```text
//! RUSTFLAGS="--cfg mcheck" cargo run -p magnon-check --release -- --seeds 2000
//! RUSTFLAGS="--cfg mcheck" cargo test -p magnon-check --release
//! ```
//!
//! A failure prints its scenario, its replay token (a seed, or a
//! decision path in exhaustive mode), and the recorded trace; feed the
//! token back (`--replay-seed N --scenario S`) to reproduce the exact
//! interleaving. In a normal build (no `mcheck` cfg) the façade is
//! `std` and this crate compiles down to [`enabled`] returning
//! `false`.

/// Whether this build carries the model-check instrumentation
/// (`RUSTFLAGS="--cfg mcheck"`).
pub fn enabled() -> bool {
    cfg!(mcheck)
}

#[cfg(mcheck)]
pub mod harness;
#[cfg(mcheck)]
pub mod policy;
#[cfg(mcheck)]
pub mod scenarios;

#[cfg(mcheck)]
pub use harness::{
    explore, explore_bounded, replay, ExploreConfig, ExploreReport, Failure, ReplayToken,
};
#[cfg(mcheck)]
pub use policy::{BoundedExplorer, GuidedPolicy, RandomPolicy};
