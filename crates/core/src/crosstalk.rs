//! Inter-channel isolation metrics.
//!
//! The paper's Fig. 3 argues frequency-division parallelism works
//! because the detector spectrum shows peaks *only* at the excitation
//! frequencies. This module quantifies that claim from a spectrum:
//! in-band vs out-of-band power, per-channel leakage, and isolation in
//! dB — reused by the width-variation study (§V), which reports "no
//! crosstalk effects" up to 500 nm.

use crate::channel::ChannelPlan;
use crate::error::GateError;
use magnon_math::spectrum::Spectrum;

/// Crosstalk assessment of a detector spectrum against a set of channel
/// frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct CrosstalkReport {
    /// Channel frequencies in Hz.
    pub channels: Vec<f64>,
    /// Spectral power within ±half_width of any channel.
    pub in_band_power: f64,
    /// Spectral power everywhere else (excluding DC).
    pub out_of_band_power: f64,
    /// `10·log10(in_band / out_of_band)` in dB; large is good.
    pub isolation_db: f64,
    /// Amplitude near each channel frequency.
    pub channel_amplitudes: Vec<f64>,
}

impl CrosstalkReport {
    /// Analyses `spectrum` for the given `channels`, counting power
    /// within `half_width` of a channel as in-band.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for an empty channel list
    /// or non-positive half width.
    ///
    /// # Examples
    ///
    /// ```
    /// use magnon_core::crosstalk::CrosstalkReport;
    /// use magnon_math::spectrum::TimeSeries;
    /// use magnon_math::window::Window;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let dt = 1e-12;
    /// let samples: Vec<f64> = (0..4096)
    ///     .map(|i| (2.0 * std::f64::consts::PI * 20e9 * dt * i as f64).sin())
    ///     .collect();
    /// let spectrum = TimeSeries::new(dt, samples)?.spectrum(Window::Hann)?;
    /// let report = CrosstalkReport::analyze(&spectrum, &[20e9], 2e9)?;
    /// assert!(report.isolation_db > 20.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn analyze(
        spectrum: &Spectrum,
        channels: &[f64],
        half_width: f64,
    ) -> Result<Self, GateError> {
        if channels.is_empty() {
            return Err(GateError::InvalidParameter {
                parameter: "channels",
                value: 0.0,
            });
        }
        if !(half_width.is_finite() && half_width > 0.0) {
            return Err(GateError::InvalidParameter {
                parameter: "half_width",
                value: half_width,
            });
        }
        let in_band_power = spectrum.power_inside(channels, half_width);
        let out_of_band_power = spectrum.power_outside(channels, half_width);
        let isolation_db = if out_of_band_power > 0.0 {
            10.0 * (in_band_power / out_of_band_power).log10()
        } else {
            f64::INFINITY
        };
        Ok(CrosstalkReport {
            channels: channels.to_vec(),
            in_band_power,
            out_of_band_power,
            isolation_db,
            channel_amplitudes: channels
                .iter()
                .map(|&f| spectrum.amplitude_near(f))
                .collect(),
        })
    }

    /// `true` when isolation exceeds `min_db` — the pass criterion used
    /// by the FIG3 and WIDTH experiments.
    pub fn is_clean(&self, min_db: f64) -> bool {
        self.isolation_db >= min_db
    }

    /// Leakage ratio: strongest spectral content at a non-channel probe
    /// frequency divided by the weakest channel amplitude. Probe
    /// frequencies are the midpoints between adjacent channels (where
    /// intermodulation products of uniformly spaced channels would
    /// land... they land *on* channels for uniform grids, so midpoints
    /// catch only broadband leakage) plus half-spacing margins outside
    /// the band.
    pub fn midpoint_leakage(&self, spectrum: &Spectrum) -> f64 {
        if self.channels.len() < 2 {
            return 0.0;
        }
        let weakest_channel = self
            .channel_amplitudes
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b));
        if weakest_channel <= 0.0 {
            return f64::INFINITY;
        }
        let mut worst = 0.0f64;
        for pair in self.channels.windows(2) {
            let mid = 0.5 * (pair[0] + pair[1]);
            worst = worst.max(spectrum.amplitude_near(mid));
        }
        worst / weakest_channel
    }
}

/// Inter-lane isolation assessment for several frequency lanes sharing
/// one waveguide (frequency-division multiplexing, arXiv:2008.12220).
///
/// Each excited channel rings with a Lorentzian line of half-width
/// `linewidth` (set by Gilbert damping); a neighbouring lane's channel
/// at spectral distance `Δf` picks up the tail power
/// `1 / (1 + (Δf / linewidth)²)`. The report carries the worst such
/// leakage across every cross-lane channel pair — the penalty FDM
/// serving pays for packing more gates onto one medium.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneIsolationReport {
    /// Number of lanes assessed.
    pub lane_count: usize,
    /// Smallest spectral gap between channels of different lanes, Hz.
    pub min_guard_band: f64,
    /// Worst cross-lane leakage as a power ratio (1.0 = a channel pair
    /// collides exactly).
    pub worst_leakage: f64,
    /// `-10·log10(worst_leakage)` in dB; large is good.
    pub isolation_db: f64,
    /// The lane-index pair producing the worst leakage.
    pub worst_pair: Option<(usize, usize)>,
    /// Lane pairs whose occupied bands overlap outright (must be zero
    /// for a usable FDM assignment).
    pub overlapping_pairs: usize,
}

impl LaneIsolationReport {
    /// Assesses `plans` (one [`ChannelPlan`] per lane) against a
    /// Lorentzian line of half-width `linewidth`.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for fewer than two lanes
    /// or a non-positive linewidth.
    pub fn analyze(plans: &[&ChannelPlan], linewidth: f64) -> Result<Self, GateError> {
        if plans.len() < 2 {
            return Err(GateError::InvalidParameter {
                parameter: "lane_count",
                value: plans.len() as f64,
            });
        }
        if !(linewidth.is_finite() && linewidth > 0.0) {
            return Err(GateError::InvalidParameter {
                parameter: "linewidth",
                value: linewidth,
            });
        }
        let mut min_guard_band = f64::INFINITY;
        let mut worst_leakage = 0.0f64;
        let mut worst_pair = None;
        let mut overlapping_pairs = 0;
        for i in 0..plans.len() {
            for j in i + 1..plans.len() {
                if plans[i].overlaps(plans[j]) {
                    overlapping_pairs += 1;
                }
                let gap = plans[i].guard_band_to(plans[j]);
                min_guard_band = min_guard_band.min(gap);
                let leak = 1.0 / (1.0 + (gap / linewidth).powi(2));
                if leak > worst_leakage {
                    worst_leakage = leak;
                    worst_pair = Some((i, j));
                }
            }
        }
        Ok(LaneIsolationReport {
            lane_count: plans.len(),
            min_guard_band,
            worst_leakage,
            isolation_db: -10.0 * worst_leakage.log10(),
            worst_pair,
            overlapping_pairs,
        })
    }

    /// `true` when no bands overlap and the worst leakage stays under
    /// `min_db` of isolation — the criterion FDM lane assignments are
    /// validated against.
    pub fn is_clean(&self, min_db: f64) -> bool {
        self.overlapping_pairs == 0 && self.isolation_db >= min_db
    }

    /// The worst leakage as an *amplitude* ratio — what a disturbed
    /// channel actually sees superposed on its own wave. Feed this to
    /// [`crate::robustness::NoiseModel::with_lane_leakage`] to fold the
    /// FDM penalty into a robustness run.
    pub fn amplitude_leakage(&self) -> f64 {
        self.worst_leakage.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magnon_math::spectrum::TimeSeries;
    use magnon_math::window::Window;
    use std::f64::consts::PI;

    fn spectrum_of(tones: &[(f64, f64)]) -> Spectrum {
        let dt = 1e-12;
        let n = 8192;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                tones
                    .iter()
                    .map(|&(f, a)| a * (2.0 * PI * f * t).sin())
                    .sum()
            })
            .collect();
        TimeSeries::new(dt, samples)
            .unwrap()
            .spectrum(Window::Hann)
            .unwrap()
    }

    #[test]
    fn clean_multi_tone_spectrum_is_isolated() {
        let channels: Vec<f64> = (1..=8).map(|i| i as f64 * 10e9).collect();
        let spec = spectrum_of(&channels.iter().map(|&f| (f, 1.0)).collect::<Vec<_>>());
        let report = CrosstalkReport::analyze(&spec, &channels, 2e9).unwrap();
        assert!(
            report.is_clean(15.0),
            "isolation = {} dB",
            report.isolation_db
        );
        assert_eq!(report.channel_amplitudes.len(), 8);
        for a in &report.channel_amplitudes {
            assert!(*a > 0.5);
        }
    }

    #[test]
    fn interferer_degrades_isolation() {
        let channels = [10e9, 20e9];
        let clean = spectrum_of(&[(10e9, 1.0), (20e9, 1.0)]);
        let dirty = spectrum_of(&[(10e9, 1.0), (20e9, 1.0), (15e9, 0.5)]);
        let r_clean = CrosstalkReport::analyze(&clean, &channels, 2e9).unwrap();
        let r_dirty = CrosstalkReport::analyze(&dirty, &channels, 2e9).unwrap();
        assert!(r_dirty.isolation_db < r_clean.isolation_db - 5.0);
        assert!(r_dirty.midpoint_leakage(&dirty) > 10.0 * r_clean.midpoint_leakage(&clean));
    }

    #[test]
    fn validation() {
        let spec = spectrum_of(&[(10e9, 1.0)]);
        assert!(CrosstalkReport::analyze(&spec, &[], 1e9).is_err());
        assert!(CrosstalkReport::analyze(&spec, &[10e9], 0.0).is_err());
    }

    #[test]
    fn single_channel_midpoint_leakage_zero() {
        let spec = spectrum_of(&[(10e9, 1.0)]);
        let r = CrosstalkReport::analyze(&spec, &[10e9], 2e9).unwrap();
        assert_eq!(r.midpoint_leakage(&spec), 0.0);
    }

    fn lane_plan(base_ghz: f64, count: usize) -> ChannelPlan {
        use crate::channel::DispersionModel;
        use magnon_physics::waveguide::Waveguide;
        let guide = Waveguide::paper_default().unwrap();
        ChannelPlan::uniform(
            &guide,
            DispersionModel::Exchange,
            count,
            base_ghz * 1e9,
            10e9,
        )
        .unwrap()
    }

    #[test]
    fn separated_lanes_are_clean_and_adjacent_lanes_are_not() {
        // Lane 0 at 10–40 GHz, lane 1 at 100–130 GHz: 60 GHz guard.
        let a = lane_plan(10.0, 4);
        let b = lane_plan(100.0, 4);
        let far = LaneIsolationReport::analyze(&[&a, &b], 0.5e9).unwrap();
        assert_eq!(far.overlapping_pairs, 0);
        assert!(far.min_guard_band >= 59e9);
        assert!(far.is_clean(30.0), "isolation = {} dB", far.isolation_db);
        assert_eq!(far.worst_pair, Some((0, 1)));
        assert!(far.amplitude_leakage() < 0.01);

        // Lane 1 moved right next to lane 0 (45 GHz base, 5 GHz gap):
        // still disjoint but much leakier than the far assignment.
        let near = lane_plan(45.0, 4);
        let close = LaneIsolationReport::analyze(&[&a, &near], 0.5e9).unwrap();
        assert_eq!(close.overlapping_pairs, 0);
        assert!(close.isolation_db < far.isolation_db);

        // Overlapping bands are flagged outright.
        let overlap = lane_plan(25.0, 4);
        let bad = LaneIsolationReport::analyze(&[&a, &overlap], 0.5e9).unwrap();
        assert!(bad.overlapping_pairs > 0);
        assert!(!bad.is_clean(0.0));
    }

    #[test]
    fn lane_isolation_validation() {
        let a = lane_plan(10.0, 2);
        assert!(LaneIsolationReport::analyze(&[&a], 1e9).is_err());
        let b = lane_plan(50.0, 2);
        assert!(LaneIsolationReport::analyze(&[&a, &b], 0.0).is_err());
        assert!(LaneIsolationReport::analyze(&[&a, &b], f64::NAN).is_err());
    }

    #[test]
    fn powers_are_nonnegative_and_consistent() {
        let channels = [10e9, 30e9];
        let spec = spectrum_of(&[(10e9, 1.0), (30e9, 0.5)]);
        let r = CrosstalkReport::analyze(&spec, &channels, 3e9).unwrap();
        assert!(r.in_band_power > 0.0);
        assert!(r.out_of_band_power >= 0.0);
        assert!(r.in_band_power > r.out_of_band_power);
    }
}
