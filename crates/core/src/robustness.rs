//! Failure injection: gate error rates under phase and amplitude noise.
//!
//! The paper validates the gate at zero temperature with ideal
//! transducers. Real transducers jitter in phase and amplitude, and
//! finite temperature adds magnetization noise
//! (see [`magnon_micromag::thermal`]). This module answers the
//! engineering question the paper leaves open: *how much disturbance
//! does the interference-based majority vote tolerate?*
//!
//! Monte-Carlo perturbation of the analytic engine: every source's
//! drive phase receives Gaussian noise of width `phase_sigma`, every
//! amplitude a relative Gaussian error of width `amplitude_sigma`, and
//! the full truth table is re-decoded per trial.

use crate::encoding::{phase_of, ReadoutMode};
use crate::engine::{constructive_reference, decode_channel};
use crate::error::GateError;
use crate::gate::ParallelGate;
use magnon_math::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Noise model applied per source and per trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of the drive-phase error in radians.
    pub phase_sigma: f64,
    /// Relative standard deviation of the drive amplitude.
    pub amplitude_sigma: f64,
}

impl NoiseModel {
    /// Creates a validated noise model.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for negative or
    /// non-finite widths.
    pub fn new(phase_sigma: f64, amplitude_sigma: f64) -> Result<Self, GateError> {
        if !(phase_sigma.is_finite() && phase_sigma >= 0.0) {
            return Err(GateError::InvalidParameter {
                parameter: "phase_sigma",
                value: phase_sigma,
            });
        }
        if !(amplitude_sigma.is_finite() && amplitude_sigma >= 0.0) {
            return Err(GateError::InvalidParameter {
                parameter: "amplitude_sigma",
                value: amplitude_sigma,
            });
        }
        Ok(NoiseModel {
            phase_sigma,
            amplitude_sigma,
        })
    }

    /// The noiseless model.
    pub fn none() -> Self {
        NoiseModel {
            phase_sigma: 0.0,
            amplitude_sigma: 0.0,
        }
    }

    /// Folds an inter-lane crosstalk penalty into the model.
    ///
    /// `amplitude_leakage` is the worst-case amplitude ratio a
    /// neighbouring frequency lane superposes onto this gate's channels
    /// (see
    /// [`crate::crosstalk::LaneIsolationReport::amplitude_leakage`]).
    /// An interfering wave of relative amplitude `a` at an uncorrelated
    /// phase perturbs the decoded phasor by up to `a` in amplitude and
    /// ≈`a` radians in phase, so the leakage RSS-combines into both
    /// sigmas. This is how FDM lane assignments get a *robustness*
    /// number, not just an isolation figure: run
    /// [`monte_carlo_error_rate`] with the penalized model and check
    /// the error rate stays zero.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::InvalidParameter`] for a negative or
    /// non-finite leakage.
    pub fn with_lane_leakage(self, amplitude_leakage: f64) -> Result<Self, GateError> {
        if !(amplitude_leakage.is_finite() && amplitude_leakage >= 0.0) {
            return Err(GateError::InvalidParameter {
                parameter: "amplitude_leakage",
                value: amplitude_leakage,
            });
        }
        NoiseModel::new(
            self.phase_sigma.hypot(amplitude_leakage),
            self.amplitude_sigma.hypot(amplitude_leakage),
        )
    }
}

/// Result of a Monte-Carlo robustness run.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// The noise model applied.
    pub noise: NoiseModel,
    /// Trials evaluated (each covers the full truth table on every
    /// channel).
    pub trials: usize,
    /// Individual (combination, channel) decodes checked.
    pub checks: usize,
    /// Decodes that flipped.
    pub failures: usize,
}

impl RobustnessReport {
    /// Observed bit-error rate.
    pub fn error_rate(&self) -> f64 {
        if self.checks == 0 {
            0.0
        } else {
            self.failures as f64 / self.checks as f64
        }
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 > 1e-300 {
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Runs `trials` Monte-Carlo truth-table evaluations of `gate` under
/// `noise`, decoding with the same rules as the noiseless engine.
///
/// # Errors
///
/// Propagates truth-table enumeration errors.
///
/// # Examples
///
/// ```
/// use magnon_core::prelude::*;
/// use magnon_core::robustness::{monte_carlo_error_rate, NoiseModel};
/// use magnon_physics::waveguide::Waveguide;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
///     .channels(4).inputs(3).build()?;
/// // Mild phase noise: the majority vote absorbs it.
/// let report = monte_carlo_error_rate(&gate, NoiseModel::new(0.1, 0.02)?, 50, 1)?;
/// assert_eq!(report.failures, 0);
/// # Ok(())
/// # }
/// ```
pub fn monte_carlo_error_rate(
    gate: &ParallelGate,
    noise: NoiseModel,
    trials: usize,
    seed: u64,
) -> Result<RobustnessReport, GateError> {
    let n = gate.word_width();
    let m = gate.input_count();
    let table = gate.function().truth_table(m)?;
    let plan = gate.channel_plan();
    let layout = gate.layout();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0usize;
    let mut checks = 0usize;

    for _ in 0..trials {
        for (combo, &expected_direct) in table.iter().enumerate() {
            for c in 0..n {
                let ch = &plan.channels()[c];
                let det = layout.detectors().iter().find(|d| d.channel == c).ok_or(
                    GateError::MalformedLayout {
                        channel: c,
                        reason: "layout carries no detector for this channel",
                    },
                )?;
                let nominal = gate.schedule().amplitudes_for_channel(c);
                let mut z = Complex64::ZERO;
                for src in layout.sources().iter().filter(|s| s.channel == c) {
                    let bit = (combo >> src.input) & 1 == 1;
                    let dx = det.position - src.position;
                    let decay = (-dx / ch.attenuation_length).exp();
                    let amp = nominal[src.input]
                        * (1.0 + noise.amplitude_sigma * gaussian(&mut rng)).max(0.0);
                    let phase =
                        ch.wavenumber * dx + phase_of(bit) + noise.phase_sigma * gaussian(&mut rng);
                    z += Complex64::from_polar(amp * decay, phase);
                }
                let reference = constructive_reference(plan, layout, c, nominal)?;
                let inverted = gate.readout()[c] == ReadoutMode::Inverted;
                let decoded = decode_channel(gate.function(), z, reference, inverted);
                let expected = gate.readout()[c].apply(expected_direct);
                checks += 1;
                if decoded != expected {
                    failures += 1;
                }
            }
        }
    }
    Ok(RobustnessReport {
        noise,
        trials,
        checks,
        failures,
    })
}

/// Sweeps phase-noise widths and reports the error rate at each point —
/// the gate's noise margin curve.
///
/// # Errors
///
/// Propagates Monte-Carlo errors.
pub fn phase_noise_sweep(
    gate: &ParallelGate,
    sigmas: &[f64],
    trials: usize,
    seed: u64,
) -> Result<Vec<RobustnessReport>, GateError> {
    sigmas
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            monte_carlo_error_rate(
                gate,
                NoiseModel::new(s, 0.0)?,
                trials,
                seed ^ (i as u64) << 32,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::ParallelGateBuilder;
    use crate::truth::LogicFunction;
    use magnon_physics::waveguide::Waveguide;

    fn gate(n: usize) -> ParallelGate {
        ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(n)
            .inputs(3)
            .function(LogicFunction::Majority)
            .build()
            .unwrap()
    }

    #[test]
    fn noise_model_validation() {
        assert!(NoiseModel::new(-0.1, 0.0).is_err());
        assert!(NoiseModel::new(0.0, f64::NAN).is_err());
        assert_eq!(NoiseModel::none().phase_sigma, 0.0);
    }

    #[test]
    fn zero_noise_is_error_free() {
        let g = gate(4);
        let r = monte_carlo_error_rate(&g, NoiseModel::none(), 10, 1).unwrap();
        assert_eq!(r.failures, 0);
        assert_eq!(r.checks, 10 * 8 * 4);
        assert_eq!(r.error_rate(), 0.0);
    }

    #[test]
    fn small_phase_noise_is_absorbed() {
        // The phase decision boundary is π/2 away; σ = 0.15 rad leaves
        // enormous margin for a 3-source vote.
        let g = gate(4);
        let r = monte_carlo_error_rate(&g, NoiseModel::new(0.15, 0.0).unwrap(), 100, 2).unwrap();
        assert_eq!(r.failures, 0, "error rate {}", r.error_rate());
    }

    #[test]
    fn huge_phase_noise_randomises_output() {
        // σ = π: phases are essentially uniform; errors approach 50%.
        let g = gate(2);
        let r = monte_carlo_error_rate(
            &g,
            NoiseModel::new(std::f64::consts::PI, 0.0).unwrap(),
            200,
            3,
        )
        .unwrap();
        let rate = r.error_rate();
        assert!(rate > 0.2 && rate < 0.7, "rate = {rate}");
    }

    #[test]
    fn error_rate_monotone_in_noise() {
        let g = gate(2);
        let reports = phase_noise_sweep(&g, &[0.0, 0.3, 0.8, 1.5, 2.5], 150, 4).unwrap();
        let rates: Vec<f64> = reports.iter().map(|r| r.error_rate()).collect();
        assert_eq!(rates[0], 0.0);
        // Allow small Monte-Carlo wiggle but require the overall trend.
        assert!(rates[4] > rates[1] + 0.05, "rates = {rates:?}");
        assert!(rates[3] > rates[0], "rates = {rates:?}");
    }

    #[test]
    fn amplitude_noise_alone_is_mild_for_majority() {
        // Majority decodes on phase; even 20% amplitude jitter rarely
        // flips a vote (it must invert the sign of the sum).
        let g = gate(4);
        let r = monte_carlo_error_rate(&g, NoiseModel::new(0.0, 0.2).unwrap(), 100, 5).unwrap();
        assert!(r.error_rate() < 0.05, "rate = {}", r.error_rate());
    }

    #[test]
    fn lane_leakage_penalty_combines_and_validates() {
        let base = NoiseModel::new(0.3, 0.4).unwrap();
        let penalized = base.with_lane_leakage(0.4).unwrap();
        assert!((penalized.phase_sigma - 0.5).abs() < 1e-12);
        assert!((penalized.amplitude_sigma - 0.4f64.hypot(0.4)).abs() < 1e-12);
        assert!(NoiseModel::none().with_lane_leakage(-0.1).is_err());
        assert!(NoiseModel::none().with_lane_leakage(f64::NAN).is_err());
    }

    #[test]
    fn well_separated_lanes_leave_the_gate_error_free() {
        use crate::channel::ChannelPlan;
        use crate::crosstalk::LaneIsolationReport;
        // The gate's own lane (10–40 GHz) next to a 100 GHz neighbour:
        // the crosstalk penalty is far inside the majority vote's
        // margin, so the penalized Monte-Carlo run stays clean.
        let g = gate(4);
        let neighbour = ChannelPlan::uniform(
            g.waveguide(),
            crate::channel::DispersionModel::Exchange,
            4,
            100e9,
            10e9,
        )
        .unwrap();
        let report = LaneIsolationReport::analyze(&[g.channel_plan(), &neighbour], 0.5e9).unwrap();
        let noise = NoiseModel::new(0.1, 0.02)
            .unwrap()
            .with_lane_leakage(report.amplitude_leakage())
            .unwrap();
        let r = monte_carlo_error_rate(&g, noise, 50, 7).unwrap();
        assert_eq!(r.failures, 0, "rate = {}", r.error_rate());
    }

    #[test]
    fn deterministic_under_seed() {
        let g = gate(2);
        let noise = NoiseModel::new(0.8, 0.1).unwrap();
        let a = monte_carlo_error_rate(&g, noise, 50, 42).unwrap();
        let b = monte_carlo_error_rate(&g, noise, 50, 42).unwrap();
        assert_eq!(a, b);
    }
}
