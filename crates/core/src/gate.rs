//! The data-parallel gate: builder, evaluation and verification.

use crate::backend::{BackendChoice, GateSession};
use crate::channel::{ChannelPlan, DispersionModel};
use crate::encoding::ReadoutMode;
use crate::engine::{ChannelReadout, EnginePrep};
use crate::error::GateError;
use crate::inline::{InlineLayout, LayoutSpec};
use crate::scalability::EnergySchedule;
use crate::truth::LogicFunction;
use crate::word::Word;
use magnon_math::constants::GHZ;
use magnon_physics::dispersion::DispersionRelation;
use magnon_physics::waveguide::Waveguide;

/// Identifies the physical waveguide a gate is patterned on.
///
/// The paper's companion work (*Multi-frequency Data Parallel Spin Wave
/// Logic Gates*, arXiv:2008.12220) extends frequency-division data
/// parallelism across **gates sharing one magnetic medium**: requests
/// for different gates on the same waveguide can ride one excitation
/// pass. Schedulers use this id to keep such gates on the same shard
/// and coalesce their work (see the `magnon-serve` crate).
///
/// Gates default to waveguide `0`, so every gate built without an
/// explicit id is considered co-located and cross-gate batchable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct WaveguideId(pub u64);

impl std::fmt::Display for WaveguideId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wg{}", self.0)
    }
}

/// Identifies a frequency lane on a waveguide.
///
/// The companion paper (*Multi-frequency Data Parallel Spin Wave Logic
/// Gates*, arXiv:2008.12220) shows that spin waves at different
/// frequencies coexist on one waveguide without interfering, so several
/// *different* gates can compute simultaneously on the same physical
/// channel as long as their frequency bands stay disjoint. A lane id
/// names one such band: gates sharing a [`WaveguideId`] but carrying
/// distinct lane ids are independent compute channels of one medium,
/// and the serving runtime coalesces their drains into a single
/// multi-lane excitation pass (see `magnon-serve`).
///
/// Gates default to lane `0`, so every pre-FDM gate keeps its old
/// single-lane behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LaneId(pub u16);

impl std::fmt::Display for LaneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lane{}", self.0)
    }
}

/// A gate's resolved frequency lane: which band it occupies on its
/// waveguide and the carrier's dispersion solution.
///
/// Built by [`ParallelGateBuilder::build`] from the gate's
/// [`ChannelPlan`]: the carrier is the spectral centre of the channel
/// band, and its wavenumber comes from the same
/// [`magnon_physics::dispersion`] branch the channels were resolved on.
/// Two gates on one waveguide may compute concurrently exactly when
/// their lanes' bands do not overlap (check with
/// [`ChannelPlan::guard_band_to`] or
/// [`crate::crosstalk::LaneIsolationReport`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyLane {
    /// The lane id (scheduling key next to [`WaveguideId`]).
    pub lane: LaneId,
    /// Carrier frequency in Hz (centre of the occupied band).
    pub carrier_frequency: f64,
    /// Carrier wavenumber in rad/m on the gate's dispersion branch.
    pub wavenumber: f64,
    /// Lowest channel frequency in Hz.
    pub band_low: f64,
    /// Highest channel frequency in Hz.
    pub band_high: f64,
}

impl FrequencyLane {
    /// Occupied bandwidth in Hz (zero for a single-channel gate).
    pub fn bandwidth(&self) -> f64 {
        self.band_high - self.band_low
    }

    /// `true` when this lane's band overlaps `other`'s — such gates
    /// must not share a waveguide.
    pub fn overlaps(&self, other: &FrequencyLane) -> bool {
        self.band_low <= other.band_high && other.band_low <= self.band_high
    }
}

/// Builder for [`ParallelGate`]s.
///
/// Defaults reproduce the paper's byte-wide 3-input majority gate:
/// 8 channels at 10–80 GHz, 3 inputs, direct readout, 10 nm × 50 nm
/// transducers with 1 nm clearance, amplitude equalisation on.
///
/// # Examples
///
/// ```
/// use magnon_core::prelude::*;
/// use magnon_physics::waveguide::Waveguide;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
///     .channels(4)
///     .inputs(3)
///     .function(LogicFunction::Majority)
///     .build()?;
/// assert_eq!(gate.word_width(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ParallelGateBuilder {
    waveguide: Waveguide,
    channel_count: usize,
    input_count: usize,
    function: LogicFunction,
    dispersion_model: DispersionModel,
    base_frequency: f64,
    frequency_step: f64,
    explicit_frequencies: Option<Vec<f64>>,
    readout: ReadoutChoice,
    layout_spec: LayoutSpec,
    equalize: bool,
    waveguide_id: WaveguideId,
    lane_id: LaneId,
}

#[derive(Debug, Clone)]
enum ReadoutChoice {
    Uniform(ReadoutMode),
    PerChannel(Vec<ReadoutMode>),
}

impl ParallelGateBuilder {
    /// Starts a builder for gates on `waveguide`.
    pub fn new(waveguide: Waveguide) -> Self {
        ParallelGateBuilder {
            waveguide,
            channel_count: 8,
            input_count: 3,
            function: LogicFunction::Majority,
            dispersion_model: DispersionModel::Exchange,
            base_frequency: 10.0 * GHZ,
            frequency_step: 10.0 * GHZ,
            explicit_frequencies: None,
            readout: ReadoutChoice::Uniform(ReadoutMode::Direct),
            layout_spec: LayoutSpec::default(),
            equalize: true,
            waveguide_id: WaveguideId::default(),
            lane_id: LaneId::default(),
        }
    }

    /// Sets the number of parallel channels `n` (word width).
    pub fn channels(mut self, n: usize) -> Self {
        self.channel_count = n;
        self
    }

    /// Sets the number of logic inputs `m`.
    pub fn inputs(mut self, m: usize) -> Self {
        self.input_count = m;
        self
    }

    /// Sets the logic function.
    pub fn function(mut self, function: LogicFunction) -> Self {
        self.function = function;
        self
    }

    /// Selects the dispersion branch (default
    /// [`DispersionModel::Exchange`], which the micromagnetic validator
    /// realises exactly).
    pub fn dispersion_model(mut self, model: DispersionModel) -> Self {
        self.dispersion_model = model;
        self
    }

    /// Sets the first channel frequency (default 10 GHz).
    pub fn base_frequency(mut self, f: f64) -> Self {
        self.base_frequency = f;
        self
    }

    /// Sets the channel frequency spacing (default 10 GHz).
    pub fn frequency_step(mut self, step: f64) -> Self {
        self.frequency_step = step;
        self
    }

    /// Uses explicit channel frequencies instead of the uniform grid.
    pub fn frequencies(mut self, freqs: Vec<f64>) -> Self {
        self.explicit_frequencies = Some(freqs);
        self
    }

    /// Applies one readout mode to every channel (default
    /// [`ReadoutMode::Direct`]).
    pub fn readout(mut self, mode: ReadoutMode) -> Self {
        self.readout = ReadoutChoice::Uniform(mode);
        self
    }

    /// Sets readout modes per channel (the paper's §III mixed
    /// direct/complemented outputs).
    pub fn readout_per_channel(mut self, modes: Vec<ReadoutMode>) -> Self {
        self.readout = ReadoutChoice::PerChannel(modes);
        self
    }

    /// Overrides transducer geometry.
    pub fn layout_spec(mut self, spec: LayoutSpec) -> Self {
        self.layout_spec = spec;
        self
    }

    /// Enables or disables the damping-compensating input-energy
    /// schedule (paper §V "Scalability"; default on). With equalisation
    /// off, far sources arrive weaker and large gates may misvote.
    pub fn equalize_amplitudes(mut self, on: bool) -> Self {
        self.equalize = on;
        self
    }

    /// Tags the gate with the physical waveguide it shares with other
    /// gates (default [`WaveguideId`] `0`). Schedulers coalesce
    /// requests across gates carrying the same id.
    pub fn on_waveguide(mut self, id: WaveguideId) -> Self {
        self.waveguide_id = id;
        self
    }

    /// Tags the gate with the frequency lane it occupies on its
    /// waveguide (default [`LaneId`] `0`). Gates on the same waveguide
    /// but different lanes are independent compute channels: schedulers
    /// coalesce their drains into one multi-lane pass. The lane id is a
    /// *name* for the band — the band itself is whatever frequencies
    /// the builder allocates, so co-located lanes should also use
    /// disjoint frequency plans (e.g. via
    /// [`ParallelGateBuilder::base_frequency`] /
    /// [`ParallelGateBuilder::frequencies`]).
    pub fn on_lane(mut self, lane: LaneId) -> Self {
        self.lane_id = lane;
        self
    }

    /// Builds the gate: allocates channels, solves the in-line layout
    /// and computes the excitation schedule.
    ///
    /// # Errors
    ///
    /// * [`GateError::UnsupportedFunction`] for invalid
    ///   function/input-count combinations.
    /// * [`GateError::BadChannelFrequency`] for unusable frequencies.
    /// * [`GateError::LayoutCollision`] when transducers cannot be
    ///   placed.
    /// * [`GateError::InputCountMismatch`] when per-channel readout
    ///   lists have the wrong length.
    pub fn build(self) -> Result<ParallelGate, GateError> {
        self.function.check_input_count(self.input_count)?;
        let plan = match &self.explicit_frequencies {
            Some(freqs) => {
                ChannelPlan::from_frequencies(&self.waveguide, self.dispersion_model, freqs)?
            }
            None => ChannelPlan::uniform(
                &self.waveguide,
                self.dispersion_model,
                self.channel_count,
                self.base_frequency,
                self.frequency_step,
            )?,
        };
        let readout = match self.readout {
            ReadoutChoice::Uniform(mode) => vec![mode; plan.len()],
            ReadoutChoice::PerChannel(modes) => {
                if modes.len() != plan.len() {
                    return Err(GateError::InputCountMismatch {
                        expected: plan.len(),
                        actual: modes.len(),
                    });
                }
                modes
            }
        };
        let layout = InlineLayout::solve(&plan, self.input_count, self.layout_spec, &readout)?;
        let schedule = if self.equalize {
            EnergySchedule::equalizing(&plan, &layout)?
        } else {
            EnergySchedule::flat(&plan, &layout)?
        };
        let prep = EnginePrep::compile(&plan, &layout, &schedule, &readout, self.function)?;
        let (band_low, band_high) = plan.band();
        let carrier = plan.carrier_frequency();
        let lane = FrequencyLane {
            lane: self.lane_id,
            carrier_frequency: carrier,
            wavenumber: plan.dispersion().wavenumber(carrier)?,
            band_low,
            band_high,
        };
        Ok(ParallelGate {
            waveguide: self.waveguide,
            plan,
            layout,
            function: self.function,
            readout,
            schedule,
            prep,
            waveguide_id: self.waveguide_id,
            lane,
        })
    }
}

/// An `n`-bit data-parallel, `m`-input spin-wave logic gate.
///
/// Built by [`ParallelGateBuilder`]. The builder compiles the channel
/// plan, in-line layout, equalised excitation schedule and readout
/// conventions into an evaluation prep **once**; afterwards the gate
/// can be evaluated
///
/// * single-shot with [`ParallelGate::evaluate`] (a thin wrapper over
///   the compiled prep),
/// * in batches through a [`GateSession`] obtained from
///   [`ParallelGate::session`], which streams many operand sets through
///   any [`crate::backend::SpinWaveBackend`] — analytic, precompiled
///   LUT, or the full LLG simulator.
#[derive(Debug, Clone)]
pub struct ParallelGate {
    waveguide: Waveguide,
    plan: ChannelPlan,
    layout: InlineLayout,
    function: LogicFunction,
    readout: Vec<ReadoutMode>,
    schedule: EnergySchedule,
    prep: EnginePrep,
    waveguide_id: WaveguideId,
    lane: FrequencyLane,
}

impl ParallelGate {
    /// The waveguide hosting the gate.
    pub fn waveguide(&self) -> &Waveguide {
        &self.waveguide
    }

    /// The shared-medium tag used for cross-gate scheduling.
    pub fn waveguide_id(&self) -> WaveguideId {
        self.waveguide_id
    }

    /// The frequency-lane tag: together with [`ParallelGate::waveguide_id`]
    /// this is the scheduling key — `(waveguide, lane)` names one
    /// independent compute channel of the shared medium.
    pub fn lane_id(&self) -> LaneId {
        self.lane.lane
    }

    /// The resolved frequency lane (carrier, wavenumber and occupied
    /// band) computed from the channel plan at build time.
    pub fn frequency_lane(&self) -> &FrequencyLane {
        &self.lane
    }

    /// The channel plan.
    pub fn channel_plan(&self) -> &ChannelPlan {
        &self.plan
    }

    /// The solved in-line layout.
    pub fn layout(&self) -> &InlineLayout {
        &self.layout
    }

    /// The logic function.
    pub fn function(&self) -> LogicFunction {
        self.function
    }

    /// Per-channel readout modes.
    pub fn readout(&self) -> &[ReadoutMode] {
        &self.readout
    }

    /// The excitation schedule (per input, per channel amplitudes).
    pub fn schedule(&self) -> &EnergySchedule {
        &self.schedule
    }

    /// Word width `n` (channel count).
    pub fn word_width(&self) -> usize {
        self.plan.len()
    }

    /// Input operand count `m`.
    pub fn input_count(&self) -> usize {
        self.prep.input_count()
    }

    /// The compiled evaluation prep shared by every backend.
    pub(crate) fn prep(&self) -> &EnginePrep {
        &self.prep
    }

    /// Fingerprint of what this gate *computes*: a hash over the
    /// compiled evaluation state (function, per-channel phasor
    /// factors, constructive references, readout inversions, carrier
    /// frequencies). Two gates with equal fingerprints produce
    /// bitwise-identical outputs for identical operands, whatever
    /// builder parameters they came from — the serving runtime uses
    /// this to decide which gates' requests may fuse into one batch.
    /// The [`WaveguideId`] deliberately does not participate.
    pub fn design_fingerprint(&self) -> u64 {
        self.prep.fingerprint()
    }

    /// Validates operand shape against the gate.
    ///
    /// # Errors
    ///
    /// * [`GateError::InputCountMismatch`] /
    ///   [`GateError::WordWidthMismatch`] for malformed operands.
    pub(crate) fn check_inputs(&self, inputs: &[Word]) -> Result<(), GateError> {
        if inputs.len() != self.input_count() {
            return Err(GateError::InputCountMismatch {
                expected: self.input_count(),
                actual: inputs.len(),
            });
        }
        for w in inputs {
            if w.width() != self.word_width() {
                return Err(GateError::WordWidthMismatch {
                    expected: self.word_width(),
                    actual: w.width(),
                });
            }
        }
        Ok(())
    }

    /// Evaluates the gate on `m` input words of width `n` using the
    /// analytic superposition engine.
    ///
    /// # Errors
    ///
    /// * [`GateError::InputCountMismatch`] /
    ///   [`GateError::WordWidthMismatch`] for malformed operands.
    ///
    /// # Examples
    ///
    /// ```
    /// use magnon_core::prelude::*;
    /// use magnon_physics::waveguide::Waveguide;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
    ///     .channels(8).inputs(3).build()?;
    /// let out = gate.evaluate(&[
    ///     Word::from_u8(0x0F),
    ///     Word::from_u8(0x33),
    ///     Word::from_u8(0x55),
    /// ])?;
    /// // MAJ(a,b,c) = ab | ac | bc = 0x17
    /// assert_eq!(out.word().to_u8(), 0x17);
    /// # Ok(())
    /// # }
    /// ```
    pub fn evaluate(&self, inputs: &[Word]) -> Result<GateOutput, GateError> {
        self.check_inputs(inputs)?;
        let (word, readouts) = self.prep.evaluate_set(inputs)?;
        Ok(GateOutput { word, readouts })
    }

    /// Opens an evaluation session on `choice`'s backend — the batch
    /// entry point. The session owns a clone of the gate, so it can
    /// outlive it.
    ///
    /// # Errors
    ///
    /// Propagates backend construction errors (e.g. a LUT over too many
    /// inputs for [`BackendChoice::Cached`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use magnon_core::backend::{BackendChoice, OperandSet};
    /// use magnon_core::prelude::*;
    /// use magnon_physics::waveguide::Waveguide;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let gate = ParallelGateBuilder::new(Waveguide::paper_default()?)
    ///     .channels(8).inputs(3).build()?;
    /// let mut session = gate.session(BackendChoice::Cached)?;
    /// let batch: Vec<OperandSet> = (0..4u8)
    ///     .map(|i| OperandSet::new(vec![
    ///         Word::from_u8(i), Word::from_u8(0x33), Word::from_u8(0x55),
    ///     ]))
    ///     .collect();
    /// let outputs = session.evaluate_batch(&batch)?;
    /// assert_eq!(outputs.len(), 4);
    /// # Ok(())
    /// # }
    /// ```
    pub fn session(&self, choice: BackendChoice) -> Result<GateSession, GateError> {
        GateSession::new(self.clone(), choice)
    }

    /// Exhaustively verifies the gate against the logic truth table by
    /// driving every input combination on every channel (combinations
    /// are batched across channels, the paper's Fig. 3 trick: with
    /// `n = 2^m` every combination runs in a single evaluation).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn verify_truth_table(&self) -> Result<TruthReport, GateError> {
        let n = self.word_width();
        let m = self.input_count();
        let combos = 1usize << m;
        let expected_table = self.function.truth_table(m)?;
        let mut failures = Vec::new();
        let mut checked = 0usize;

        let mut combo = 0usize;
        while combo < combos {
            // Assign combination (combo + c) mod combos to channel c.
            let mut inputs = vec![Word::zeros(n)?; m];
            for c in 0..n {
                let assigned = (combo + c) % combos;
                for (j, word) in inputs.iter_mut().enumerate() {
                    *word = word.with_bit(c, (assigned >> j) & 1 == 1)?;
                }
            }
            let out = self.evaluate(&inputs)?;
            for c in 0..n {
                let assigned = (combo + c) % combos;
                // Each batch covers `n` consecutive combos; only count
                // each combo once.
                if assigned >= combo && assigned < combo + n.min(combos - combo) {
                    let expected = self.readout[c].apply(expected_table[assigned]);
                    let got = out.word().bit(c)?;
                    checked += 1;
                    if got != expected {
                        failures.push(TruthFailure {
                            combination: assigned,
                            channel: c,
                            expected,
                            got,
                        });
                    }
                }
            }
            combo += n.max(1).min(combos);
        }
        Ok(TruthReport {
            combinations: combos,
            checked,
            failures,
        })
    }
}

/// Result of one gate evaluation.
#[derive(Debug, Clone)]
pub struct GateOutput {
    word: Word,
    readouts: Vec<ChannelReadout>,
}

impl GateOutput {
    /// Assembles an output from a decoded word and its diagnostics.
    pub(crate) fn new(word: Word, readouts: Vec<ChannelReadout>) -> Self {
        GateOutput { word, readouts }
    }

    /// Wraps a bare decoded word as a logic-only output: `readouts()`
    /// answers an empty slice. Serving runtimes reply with these when
    /// callers only consume logic words (see `magnon-serve`'s
    /// `keep_readouts`), skipping the per-channel diagnostics
    /// allocation.
    pub fn logic_only(word: Word) -> Self {
        GateOutput {
            word,
            readouts: Vec::new(),
        }
    }

    /// The decoded output word.
    pub fn word(&self) -> Word {
        self.word
    }

    /// Per-channel amplitude/phase diagnostics.
    pub fn readouts(&self) -> &[ChannelReadout] {
        &self.readouts
    }
}

/// One truth-table mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruthFailure {
    /// The input combination (bit `j` = input `j`).
    pub combination: usize,
    /// The channel on which it was evaluated.
    pub channel: usize,
    /// Expected output bit.
    pub expected: bool,
    /// Observed output bit.
    pub got: bool,
}

/// Outcome of [`ParallelGate::verify_truth_table`].
#[derive(Debug, Clone)]
pub struct TruthReport {
    /// Total input combinations (2^m).
    pub combinations: usize,
    /// Number of (combination, channel) checks performed.
    pub checked: usize,
    /// All mismatches (empty for a correct gate).
    pub failures: Vec<TruthFailure>,
}

impl TruthReport {
    /// `true` when every combination decoded correctly.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn byte_majority() -> ParallelGate {
        ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(8)
            .inputs(3)
            .function(LogicFunction::Majority)
            .build()
            .unwrap()
    }

    #[test]
    fn defaults_match_paper() {
        let gate = byte_majority();
        assert_eq!(gate.word_width(), 8);
        assert_eq!(gate.input_count(), 3);
        assert_eq!(gate.function(), LogicFunction::Majority);
        assert_eq!(gate.channel_plan().frequencies()[0], 10.0 * GHZ);
        assert_eq!(gate.channel_plan().frequencies()[7], 80.0 * GHZ);
        assert_eq!(gate.waveguide_id(), WaveguideId::default());
    }

    #[test]
    fn waveguide_id_tags_gates_for_cross_gate_scheduling() {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(4)
            .inputs(3)
            .on_waveguide(WaveguideId(7))
            .build()
            .unwrap();
        assert_eq!(gate.waveguide_id(), WaveguideId(7));
        assert_eq!(gate.waveguide_id().to_string(), "wg7");
        assert!(WaveguideId(7) > WaveguideId(0));
    }

    #[test]
    fn frequency_lanes_resolve_carrier_band_and_wavenumber() {
        use magnon_physics::dispersion::DispersionRelation;
        // Default gates sit on lane 0 with the 10–80 GHz paper band.
        let gate = byte_majority();
        let lane = gate.frequency_lane();
        assert_eq!(gate.lane_id(), LaneId(0));
        assert_eq!(lane.band_low, 10.0 * GHZ);
        assert_eq!(lane.band_high, 80.0 * GHZ);
        assert_eq!(lane.carrier_frequency, 45.0 * GHZ);
        assert_eq!(lane.bandwidth(), 70.0 * GHZ);
        // The carrier wavenumber solves the same dispersion branch the
        // channels were resolved on.
        let k = lane.wavenumber;
        assert!(k > 0.0);
        let back = gate.channel_plan().dispersion().frequency(k);
        assert!((back - lane.carrier_frequency).abs() < 1e6);

        // A second lane on a 100 GHz band does not overlap lane 0.
        let upper = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(8)
            .inputs(3)
            .base_frequency(100.0 * GHZ)
            .on_lane(LaneId(1))
            .build()
            .unwrap();
        assert_eq!(upper.lane_id(), LaneId(1));
        assert_eq!(upper.lane_id().to_string(), "lane1");
        assert!(!upper.frequency_lane().overlaps(lane));
        assert!(upper.frequency_lane().wavenumber > lane.wavenumber);
        // And the shifted-band gate still votes correctly.
        assert!(upper.verify_truth_table().unwrap().all_passed());

        // Overlapping bands are detected whatever the lane ids say.
        let shifted = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(8)
            .inputs(3)
            .base_frequency(50.0 * GHZ)
            .on_lane(LaneId(2))
            .build()
            .unwrap();
        assert!(shifted.frequency_lane().overlaps(lane));
    }

    #[test]
    fn byte_majority_matches_boolean_identity() {
        let gate = byte_majority();
        for (a, b, c) in [
            (0x00u8, 0x00u8, 0x00u8),
            (0xFF, 0xFF, 0xFF),
            (0xAA, 0xCC, 0xF0),
            (0x01, 0x80, 0xFF),
            (0x37, 0x91, 0x5E),
            (0x13, 0x57, 0x9B),
        ] {
            let out = gate
                .evaluate(&[Word::from_u8(a), Word::from_u8(b), Word::from_u8(c)])
                .unwrap();
            let expected = (a & b) | (a & c) | (b & c);
            assert_eq!(out.word().to_u8(), expected, "MAJ({a:#x},{b:#x},{c:#x})");
        }
    }

    #[test]
    fn truth_table_verification_passes() {
        let gate = byte_majority();
        let report = gate.verify_truth_table().unwrap();
        assert!(report.all_passed(), "failures: {:?}", report.failures);
        assert_eq!(report.combinations, 8);
        assert!(report.checked >= 8);
    }

    #[test]
    fn xor_gate_works() {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(4)
            .inputs(2)
            .function(LogicFunction::Xor)
            .build()
            .unwrap();
        let a = Word::from_bits(0b0011, 4).unwrap();
        let b = Word::from_bits(0b0101, 4).unwrap();
        let out = gate.evaluate(&[a, b]).unwrap();
        assert_eq!(out.word().bits(), 0b0110);
        assert!(gate.verify_truth_table().unwrap().all_passed());
    }

    #[test]
    fn inverted_readout_complements_majority() {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(4)
            .inputs(3)
            .readout(ReadoutMode::Inverted)
            .build()
            .unwrap();
        let a = Word::from_bits(0b1111, 4).unwrap();
        let b = Word::from_bits(0b0011, 4).unwrap();
        let c = Word::from_bits(0b0101, 4).unwrap();
        let out = gate.evaluate(&[a, b, c]).unwrap();
        let maj = 0b0001u64 | 0b0101 & 0b0011 | 0b1111 & (0b0011 | 0b0101);
        let expected = !((0b1111 & 0b0011) | (0b1111 & 0b0101) | (0b0011 & 0b0101)) & 0b1111;
        let _ = maj;
        assert_eq!(out.word().bits(), expected);
        assert!(gate.verify_truth_table().unwrap().all_passed());
    }

    #[test]
    fn mixed_readout_modes() {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(4)
            .inputs(3)
            .readout_per_channel(vec![
                ReadoutMode::Direct,
                ReadoutMode::Inverted,
                ReadoutMode::Direct,
                ReadoutMode::Inverted,
            ])
            .build()
            .unwrap();
        assert!(gate.verify_truth_table().unwrap().all_passed());
    }

    #[test]
    fn input_validation() {
        let gate = byte_majority();
        // Wrong operand count.
        assert!(matches!(
            gate.evaluate(&[Word::from_u8(0), Word::from_u8(0)]),
            Err(GateError::InputCountMismatch { .. })
        ));
        // Wrong width.
        let narrow = Word::zeros(4).unwrap();
        assert!(matches!(
            gate.evaluate(&[narrow, narrow, narrow]),
            Err(GateError::WordWidthMismatch { .. })
        ));
    }

    #[test]
    fn builder_rejects_bad_configs() {
        let g = Waveguide::paper_default().unwrap();
        // Even-input majority.
        assert!(ParallelGateBuilder::new(g).inputs(4).build().is_err());
        // 3-input XOR.
        assert!(ParallelGateBuilder::new(g)
            .function(LogicFunction::Xor)
            .inputs(3)
            .build()
            .is_err());
        // Below-FMR base frequency.
        assert!(ParallelGateBuilder::new(g)
            .base_frequency(1.0 * GHZ)
            .build()
            .is_err());
        // Mismatched per-channel readout list.
        assert!(ParallelGateBuilder::new(g)
            .channels(4)
            .readout_per_channel(vec![ReadoutMode::Direct; 3])
            .build()
            .is_err());
    }

    #[test]
    fn explicit_frequencies() {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .frequencies(vec![12.0 * GHZ, 31.0 * GHZ, 64.0 * GHZ])
            .inputs(3)
            .build()
            .unwrap();
        assert_eq!(gate.word_width(), 3);
        assert!(gate.verify_truth_table().unwrap().all_passed());
    }

    #[test]
    fn five_input_majority_gate() {
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(4)
            .inputs(5)
            .build()
            .unwrap();
        assert!(gate.verify_truth_table().unwrap().all_passed());
    }

    #[test]
    fn unequalized_gate_still_correct_at_paper_scale() {
        // At the byte-gate's sub-micron span, damping skew is small
        // enough that even a flat excitation schedule votes correctly —
        // consistent with the paper needing no graded energies for m=3.
        let gate = ParallelGateBuilder::new(Waveguide::paper_default().unwrap())
            .channels(8)
            .inputs(3)
            .equalize_amplitudes(false)
            .build()
            .unwrap();
        assert!(gate.verify_truth_table().unwrap().all_passed());
    }

    #[test]
    fn readouts_expose_amplitude_and_phase() {
        let gate = byte_majority();
        let out = gate
            .evaluate(&[Word::from_u8(0), Word::from_u8(0), Word::from_u8(0)])
            .unwrap();
        assert_eq!(out.readouts().len(), 8);
        for r in out.readouts() {
            assert!(r.amplitude > 0.0);
            assert!(!r.logic);
            assert!(r.phase.abs() < 0.1, "all-zeros phase should be ~0");
        }
    }
}
