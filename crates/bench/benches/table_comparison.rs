//! TAB-AREA bench: the full cost-comparison pipeline — building the
//! byte-wide gate (channel allocation + in-line layout solving) and the
//! scalar/serialized equivalents, then computing the §V.B table.

use criterion::{criterion_group, criterion_main, Criterion};
use magnon_bench::byte_majority_gate;
use magnon_core::gate::ParallelGateBuilder;
use magnon_cost::{CostModel, Transducer};
use magnon_physics::waveguide::Waveguide;
use std::hint::black_box;

fn bench_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_comparison");
    group.sample_size(20);

    group.bench_function("build_byte_gate", |b| {
        b.iter(|| byte_majority_gate().expect("gate"))
    });

    let gate = byte_majority_gate().expect("gate");
    let model = CostModel::new(Transducer::paper_default());
    group.bench_function("compare_three_styles", |b| {
        b.iter(|| model.compare(black_box(&gate)).expect("comparison"))
    });

    let guide = Waveguide::paper_default().expect("waveguide");
    group.bench_function("layout_solve_16_channels", |b| {
        b.iter(|| {
            ParallelGateBuilder::new(guide)
                .channels(16)
                .inputs(3)
                .frequency_step(5.0e9)
                .build()
                .expect("gate")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_table);
criterion_main!(benches);
