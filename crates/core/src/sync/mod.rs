//! Synchronization façade for the serving stack.
//!
//! Concurrent code in this workspace (`magnon-serve`, `magnon-net`)
//! imports its sync primitives, threads, and monotonic clocks from
//! here instead of `std` directly:
//!
//! ```ignore
//! use magnon_core::sync::atomic::{AtomicU64, Ordering};
//! use magnon_core::sync::mpsc;
//! use magnon_core::sync::thread;
//! use magnon_core::sync::time::{Duration, Instant};
//! use magnon_core::sync::{Arc, Mutex};
//! ```
//!
//! In a normal build this module is a zero-cost pile of `pub use
//! std::…` re-exports — same types, same codegen, nothing to audit.
//! Compiled with `RUSTFLAGS="--cfg mcheck"` the same paths resolve to
//! instrumented shims: every atomic access, lock transition, channel
//! op, park/unpark, spawn/join, and clock read routes through a
//! deterministic execution controller that records a replayable trace
//! and lets a schedule policy choose the interleaving. The
//! `magnon-check` crate drives it; see `crates/check`.
//!
//! `mcheck` is a *custom cfg*, not a cargo feature, on purpose:
//! feature unification would let one crate's dev-dependency switch the
//! shims on for every build in the graph. A cfg only exists when the
//! person running the build asks for it.

#[cfg(mcheck)]
mod exec;
#[cfg(mcheck)]
mod shim;

/// The model-check controller API (`cfg(mcheck)` only): execution
/// driving, policies, traces. `magnon-check` is the intended consumer.
#[cfg(mcheck)]
pub mod mcheck {
    pub use super::exec::{
        op, run_execution, Choice, ChoicePoint, Event, FailureKind, ObjectId, Policy, RunOutcome,
        TaskId, Trace,
    };
}

#[cfg(mcheck)]
pub use shim::{atomic, mpsc, thread, time, LockResult, Mutex, MutexGuard, PoisonError};

/// `Arc` needs no instrumentation: it is reference counting, not
/// scheduling — shared either way.
pub use std::sync::{Arc, Weak};

#[cfg(not(mcheck))]
pub use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError, RwLock};

/// Atomics: `std::sync::atomic` re-exported (instrumented under
/// `mcheck`).
#[cfg(not(mcheck))]
pub mod atomic {
    pub use std::sync::atomic::*;
}

/// Channels: `std::sync::mpsc` re-exported (instrumented under
/// `mcheck`).
#[cfg(not(mcheck))]
pub mod mpsc {
    pub use std::sync::mpsc::*;
}

/// Threads: `std::thread` re-exported (instrumented under `mcheck`).
#[cfg(not(mcheck))]
pub mod thread {
    pub use std::thread::*;
}

/// Monotonic time: `std::time` re-exported (`Instant` is virtualized
/// under `mcheck` so traces are deterministic).
#[cfg(not(mcheck))]
pub mod time {
    pub use std::time::{Duration, Instant};
}
