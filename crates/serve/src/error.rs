//! Error type for the serving runtime.

use crate::scheduler::ShutdownReport;
use magnon_core::GateError;
use std::fmt;

/// Errors surfaced by the scheduler and its client handles.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The gate model itself failed (operand shape, backend error,
    /// persistence).
    Gate(GateError),
    /// A [`crate::ServeConfig`] that cannot produce a working runtime
    /// (e.g. `max_batch == 0`, which would silently disable batching).
    Config {
        /// What is wrong with the configuration.
        reason: String,
    },
    /// A [`crate::GateId`] that was never registered with this
    /// scheduler.
    UnknownGate {
        /// The unregistered index.
        index: usize,
    },
    /// The target shard's bounded queue is full (only from
    /// [`crate::Scheduler::try_submit`]; blocking submission applies
    /// backpressure instead).
    QueueFull {
        /// The shard whose queue rejected the request.
        shard: usize,
    },
    /// A wait deadline elapsed before the completion arrived (only from
    /// [`crate::Ticket::wait_timeout`]; the request may still complete
    /// later and can be waited on again).
    Timeout,
    /// One or more workers panicked during [`crate::Scheduler::shutdown`].
    /// The surviving shards were still joined and their LUTs persisted —
    /// the enclosed report covers everything that could be salvaged.
    WorkerPanicked {
        /// Shards whose worker threads panicked.
        shards: Vec<usize>,
        /// The shutdown report assembled from the surviving workers.
        report: Box<ShutdownReport>,
    },
    /// The runtime (or the worker owning the request) has shut down.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Gate(e) => write!(f, "gate error: {e}"),
            ServeError::Config { reason } => {
                write!(f, "invalid serving configuration: {reason}")
            }
            ServeError::UnknownGate { index } => {
                write!(f, "gate id {index} was not registered with this scheduler")
            }
            ServeError::QueueFull { shard } => {
                write!(f, "shard {shard}'s request queue is full")
            }
            ServeError::Timeout => {
                write!(f, "the wait deadline elapsed before the completion arrived")
            }
            ServeError::WorkerPanicked { shards, report } => {
                write!(
                    f,
                    "worker shard(s) {shards:?} panicked during shutdown ({} LUT entries \
                     salvaged from survivors)",
                    report.lut_entries_saved
                )
            }
            ServeError::Shutdown => write!(f, "the serving runtime has shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Gate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GateError> for ServeError {
    fn from(e: GateError) -> Self {
        ServeError::Gate(e)
    }
}

impl ServeError {
    /// Collapses into a [`GateError`] for callers behind
    /// backend-agnostic interfaces (runtime failures become
    /// [`GateError::Runtime`]).
    pub fn into_gate_error(self) -> GateError {
        match self {
            ServeError::Gate(e) => e,
            other => GateError::Runtime {
                reason: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: ServeError = GateError::InputCountMismatch {
            expected: 3,
            actual: 1,
        }
        .into();
        assert!(e.to_string().contains("gate error"));
        assert!(matches!(
            e.clone().into_gate_error(),
            GateError::InputCountMismatch { .. }
        ));
        let e = ServeError::QueueFull { shard: 2 };
        assert!(e.to_string().contains("shard 2"));
        assert!(matches!(e.into_gate_error(), GateError::Runtime { .. }));
        assert!(ServeError::Shutdown.to_string().contains("shut down"));
        assert!(ServeError::Timeout.to_string().contains("deadline"));
        assert!(matches!(
            ServeError::Timeout.into_gate_error(),
            GateError::Runtime { .. }
        ));
        let e = ServeError::Config {
            reason: "max_batch must be at least 1".into(),
        };
        assert!(e.to_string().contains("invalid serving configuration"));
        assert!(matches!(e.into_gate_error(), GateError::Runtime { .. }));
        assert!(ServeError::UnknownGate { index: 9 }
            .to_string()
            .contains('9'));
    }
}
